//! `scc-serve`: a resident simulation service over the shared
//! [`scc_sim::Runner`], plus its client and load generator.
//!
//! The binary crates `scc-serve` and `scc-load` are thin shells over
//! this library:
//!
//! - [`server`] — listeners (TCP + Unix), the bounded job queue with
//!   `queue_full` backpressure, deadline enforcement, and graceful
//!   drain;
//! - [`protocol`] — the NDJSON wire grammar and the deterministic
//!   report rendering (byte-identical to direct in-process execution);
//! - [`frame`] / [`json`] — newline framing with a size cap and a
//!   dependency-free JSON parser, mirroring the hand-rolled emitters
//!   used across the workspace;
//! - [`client`] / [`loadgen`] — a blocking client and the concurrent
//!   load driver behind `results/BENCH_serve.json`;
//! - [`signal`] — the SIGTERM/SIGINT drain hook.
//!
//! Everything is std-only: no async runtime, no serde, no signal
//! crates — matching the repo's zero-registry-dependency rule.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod json;
pub mod loadgen;
pub mod net;
pub mod protocol;
pub mod server;
pub mod signal;

pub use client::Client;
pub use net::Addr;
pub use server::{Server, ServerConfig, ServerHandle};
