//! `scc-route` — consistent-hash shard router for `scc-serve`.
//!
//! ```text
//! scc-route --shard ADDR [--shard ADDR]...
//!           [--listen tcp:HOST:PORT | --listen unix:PATH]...
//!           [--upstream-conns N] [--max-conns N] [--max-cycles N]
//! ```
//!
//! Clients connect to the router exactly as they would to a shard; each
//! `run` request is hashed on its canonical job key and forwarded
//! verbatim to the owning backend, so responses are byte-identical to
//! direct shard (and direct in-process) execution. Shard order on the
//! command line is the ring identity — keep it stable across restarts
//! or every shard's cache locality resets.
//!
//! `--max-cycles` must match the shards' own cap: the key the router
//! hashes embeds the clamped cycle budget. SIGTERM/SIGINT (or the
//! `shutdown` verb) drains the router and propagates `shutdown` to
//! every reachable shard, so one signal winds down the whole topology.

use std::process::ExitCode;
use std::time::Duration;

use scc_serve::route::{Router, RouterConfig};
use scc_serve::{signal, Addr};

fn usage() -> ! {
    eprintln!(
        "usage: scc-route --shard ADDR [--shard ADDR]... \
         [--listen tcp:HOST:PORT|unix:PATH]... [--upstream-conns N] \
         [--max-conns N] [--max-cycles N]"
    );
    std::process::exit(2);
}

fn parse_args() -> (Vec<Addr>, RouterConfig) {
    let mut addrs = Vec::new();
    let mut cfg = RouterConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("scc-route: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--listen" => {
                let v = value("--listen");
                match Addr::parse(&v) {
                    Ok(a) => addrs.push(a),
                    Err(e) => {
                        eprintln!("scc-route: {e}");
                        usage();
                    }
                }
            }
            "--shard" => {
                let v = value("--shard");
                match Addr::parse(&v) {
                    Ok(a) => cfg.shards.push(a),
                    Err(e) => {
                        eprintln!("scc-route: {e}");
                        usage();
                    }
                }
            }
            "--upstream-conns" => match value("--upstream-conns").parse() {
                Ok(n) if n >= 1 => cfg.upstream_conns = n,
                _ => usage(),
            },
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) if n >= 1 => cfg.max_conns = n,
                _ => usage(),
            },
            "--max-cycles" => match value("--max-cycles").parse() {
                Ok(n) if n >= 1 => cfg.max_cycles = n,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("scc-route: unknown flag `{other}`");
                usage();
            }
        }
    }
    if cfg.shards.is_empty() {
        eprintln!("scc-route: at least one --shard is required");
        usage();
    }
    if addrs.is_empty() {
        addrs.push(Addr::Tcp("127.0.0.1:7879".to_string()));
    }
    (addrs, cfg)
}

fn main() -> ExitCode {
    let (addrs, cfg) = parse_args();
    signal::install();
    #[cfg(unix)]
    match scc_serve::sys::raise_nofile_limit() {
        Ok(limit) => eprintln!("scc-route: fd limit {limit}"),
        Err(e) => eprintln!("scc-route: could not raise fd limit: {e}"),
    }
    let router = match Router::bind(&addrs, cfg.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scc-route: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for a in &addrs {
        eprintln!("scc-route: listening on {a}");
    }
    if let Some(tcp) = router.local_tcp_addr() {
        eprintln!("scc-route: tcp bound at {tcp}");
    }
    for (i, s) in cfg.shards.iter().enumerate() {
        eprintln!("scc-route: shard {i} -> {s}");
    }
    eprintln!(
        "scc-route: {} shards x {} upstream conns, max conns {}, max cycles {}",
        cfg.shards.len(),
        cfg.upstream_conns,
        cfg.max_conns,
        cfg.max_cycles
    );

    let handle = router.handle();
    std::thread::spawn(move || loop {
        if signal::received() {
            eprintln!("scc-route: signal received, draining");
            handle.drain();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    match router.serve() {
        Ok(()) => {
            eprintln!("scc-route: drained");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("scc-route: {e}");
            ExitCode::FAILURE
        }
    }
}
