//! `scc-serve` — run the resident simulation service.
//!
//! ```text
//! scc-serve [--listen tcp:HOST:PORT | --listen unix:PATH]...
//!           [--workers N] [--queue N] [--max-cycles N]
//!           [--max-conns N] [--store-dir PATH]
//! ```
//!
//! All connections are multiplexed on a single `poll(2)` readiness
//! loop, so the fd limit — not a thread count — bounds concurrency.
//! Startup raises `RLIMIT_NOFILE` to its hard ceiling and reports it;
//! `--max-conns` is the admission-control cap beyond which new
//! connections get an `over_capacity` error.
//!
//! Defaults to `tcp:127.0.0.1:7878` when no `--listen` is given.
//! `--store-dir` attaches the crash-safe persistent result store: every
//! fresh result is written through to disk, and a restarted server
//! serves prior results warm (recovery runs at startup; see the
//! `persist` and `warm` verbs). SIGTERM/SIGINT (or the `shutdown` verb)
//! triggers a graceful drain: accepting stops, queued and in-flight
//! jobs finish, the store is flushed, then the process exits 0.

use std::process::ExitCode;
use std::time::Duration;

use scc_serve::{signal, Addr, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: scc-serve [--listen tcp:HOST:PORT|unix:PATH]... [--workers N] [--queue N] \
         [--max-cycles N] [--max-conns N] [--store-dir PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> (Vec<Addr>, ServerConfig) {
    let mut addrs = Vec::new();
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("scc-serve: {what} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--listen" => {
                let v = value("--listen");
                match Addr::parse(&v) {
                    Ok(a) => addrs.push(a),
                    Err(e) => {
                        eprintln!("scc-serve: {e}");
                        usage();
                    }
                }
            }
            "--workers" => match value("--workers").parse() {
                Ok(n) if n >= 1 => cfg.workers = n,
                _ => usage(),
            },
            "--queue" => match value("--queue").parse() {
                Ok(n) if n >= 1 => cfg.queue_depth = n,
                _ => usage(),
            },
            "--max-cycles" => match value("--max-cycles").parse() {
                Ok(n) if n >= 1 => cfg.max_cycles = n,
                _ => usage(),
            },
            "--max-conns" => match value("--max-conns").parse() {
                Ok(n) if n >= 1 => cfg.max_conns = n,
                _ => usage(),
            },
            "--store-dir" => cfg.store_dir = Some(value("--store-dir").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("scc-serve: unknown flag `{other}`");
                usage();
            }
        }
    }
    if addrs.is_empty() {
        addrs.push(Addr::Tcp("127.0.0.1:7878".to_string()));
    }
    (addrs, cfg)
}

fn main() -> ExitCode {
    let (addrs, cfg) = parse_args();
    signal::install();
    #[cfg(unix)]
    match scc_serve::sys::raise_nofile_limit() {
        Ok(limit) => eprintln!("scc-serve: fd limit {limit}"),
        Err(e) => eprintln!("scc-serve: could not raise fd limit: {e}"),
    }
    let server = match Server::bind(&addrs, cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scc-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for a in &addrs {
        eprintln!("scc-serve: listening on {a}");
    }
    if let Some(tcp) = server.local_tcp_addr() {
        eprintln!("scc-serve: tcp bound at {tcp}");
    }
    eprintln!(
        "scc-serve: {} workers, queue depth {}, max cycles {}, max conns {} (poll readiness loop)",
        cfg.workers, cfg.queue_depth, cfg.max_cycles, cfg.max_conns
    );

    let handle = server.handle();
    std::thread::spawn(move || loop {
        if signal::received() {
            eprintln!("scc-serve: signal received, draining");
            handle.drain();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    match server.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scc-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
