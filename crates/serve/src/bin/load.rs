//! `scc-load` — drive an `scc-serve` instance (or a whole sharded
//! topology) with concurrent connections and summarize
//! throughput/latency/cache behavior.
//!
//! ```text
//! scc-load --connect tcp:HOST:PORT|unix:PATH
//!          [--conns N] [--requests N] [--workload NAME] [--iters N]
//!          [--level LABEL] [--deadline-ms N] [--distinct N]
//!          [--idle-conns N] [--sweep N,N,...]
//!          [--stats-addr ADDR]...
//!          [--out results/BENCH_serve.json]
//!          [--store-out results/BENCH_store.json] [--min-warm-rate R]
//!          [--shutdown]
//!
//! scc-load --shards 1,2,4 [--spawn-dir DIR]
//!          [--serve-bin PATH] [--route-bin PATH]
//!          [--shard-workers N] [--upstream-conns N]
//!          [load flags as above] [--out results/BENCH_serve.json]
//! ```
//!
//! `--idle-conns` is the high-connection mode: that many verified idle
//! connections are held open across the whole run (each is re-checked
//! at the end; a dead one counts as an error). `--sweep 8,64,256` runs
//! one hot phase per count so `results/BENCH_serve.json` records
//! throughput and p50/p95/p99 per connection count.
//!
//! `--shards` is the multi-process scaling mode: for each count, N
//! `scc-serve` shard processes plus one `scc-route` router are spawned
//! over Unix sockets in `--spawn-dir`, the load runs through the
//! router, per-shard throughput is recorded, and the tree is drained
//! with one `shutdown`. The binaries default to siblings of `scc-load`
//! itself. The resulting document is schema v3 with `mode: "scaling"`
//! and one `topologies` entry per shard count.
//!
//! `--stats-addr` points counter reads somewhere other than
//! `--connect` — when driving a router directly, list the shard
//! addresses so cache hit rates come from the shards (the router has
//! no cache of its own). The scaling mode wires this automatically.
//!
//! `--store-out` writes the persistent-store report for a
//! restart-and-replay measurement: run a mix against a `--store-dir`
//! server, restart the server on the same directory, then replay the
//! identical mix with `--store-out` — every LRU miss probes the store,
//! so the report's `warm_hit_rate` measures how much of the prior run
//! survived the restart. `--min-warm-rate R` turns that into a gate:
//! exit non-zero when the measured rate is below `R` (or undefined
//! because the run never probed the store).
//!
//! Exits non-zero if any request ends in a non-retryable error
//! (`queue_full` and `shard_unavailable` rejections are retried after
//! the server's hint and do not fail the run).

use std::process::ExitCode;

use scc_serve::loadgen::{bench_json, run, stats_object, store_bench_json, LoadConfig};
use scc_serve::{Addr, Client};

fn usage() -> ! {
    eprintln!(
        "usage: scc-load --connect ADDR [--conns N] [--requests N] [--workload NAME] \
         [--iters N] [--level LABEL] [--deadline-ms N] [--distinct N] \
         [--idle-conns N] [--sweep N,N,...] [--stats-addr ADDR]... [--out FILE] \
         [--store-out FILE] [--min-warm-rate R] [--shutdown]\n\
       or: scc-load --shards N,N,... [--spawn-dir DIR] [--serve-bin PATH] \
         [--route-bin PATH] [--shard-workers N] [--upstream-conns N] \
         [load flags] [--out FILE]"
    );
    std::process::exit(2);
}

struct Args {
    cfg: LoadConfig,
    out: Option<String>,
    store_out: Option<String>,
    min_warm_rate: Option<f64>,
    shutdown: bool,
    /// Shard counts for the multi-process scaling mode; empty means
    /// the classic single-target mode.
    shards: Vec<usize>,
    spawn_dir: Option<String>,
    serve_bin: Option<String>,
    route_bin: Option<String>,
    shard_workers: usize,
    upstream_conns: usize,
}

fn parse_args() -> Args {
    let mut addr = None;
    let mut cfg = LoadConfig {
        addr: Addr::Tcp(String::new()),
        stats_addrs: Vec::new(),
        conns: 8,
        requests_per_conn: 8,
        workload: "freqmine".to_string(),
        iters: 400,
        level: "full-scc".to_string(),
        deadline_ms: None,
        distinct: 4,
        idle_conns: 0,
        sweep: Vec::new(),
    };
    let mut out = None;
    let mut store_out = None;
    let mut min_warm_rate = None;
    let mut shutdown = false;
    let mut shards = Vec::new();
    let mut spawn_dir = None;
    let mut serve_bin = None;
    let mut route_bin = None;
    let mut shard_workers = 2;
    let mut upstream_conns = 4;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("scc-load: {what} needs a value");
                usage();
            }
        };
        let parse_counts = |what: &str, v: String| -> Vec<usize> {
            let parsed: Result<Vec<usize>, _> = v.split(',').map(|s| s.trim().parse()).collect();
            match parsed {
                Ok(v) if !v.is_empty() && v.iter().all(|&n| n >= 1) => v,
                _ => {
                    eprintln!("scc-load: {what} wants a comma-separated list of counts >= 1");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--connect" => match Addr::parse(&value("--connect")) {
                Ok(a) => addr = Some(a),
                Err(e) => {
                    eprintln!("scc-load: {e}");
                    usage();
                }
            },
            "--stats-addr" => match Addr::parse(&value("--stats-addr")) {
                Ok(a) => cfg.stats_addrs.push(a),
                Err(e) => {
                    eprintln!("scc-load: {e}");
                    usage();
                }
            },
            "--conns" => match value("--conns").parse() {
                Ok(n) if n >= 1 => cfg.conns = n,
                _ => usage(),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => cfg.requests_per_conn = n,
                _ => usage(),
            },
            "--workload" => cfg.workload = value("--workload"),
            "--iters" => match value("--iters").parse() {
                Ok(n) if n >= 1 => cfg.iters = n,
                _ => usage(),
            },
            "--level" => cfg.level = value("--level"),
            "--deadline-ms" => match value("--deadline-ms").parse() {
                Ok(n) => cfg.deadline_ms = Some(n),
                _ => usage(),
            },
            "--distinct" => match value("--distinct").parse() {
                Ok(n) if n >= 1 => cfg.distinct = n,
                _ => usage(),
            },
            "--idle-conns" => match value("--idle-conns").parse() {
                Ok(n) => cfg.idle_conns = n,
                _ => usage(),
            },
            "--sweep" => cfg.sweep = parse_counts("--sweep", value("--sweep")),
            "--shards" => shards = parse_counts("--shards", value("--shards")),
            "--spawn-dir" => spawn_dir = Some(value("--spawn-dir")),
            "--serve-bin" => serve_bin = Some(value("--serve-bin")),
            "--route-bin" => route_bin = Some(value("--route-bin")),
            "--shard-workers" => match value("--shard-workers").parse() {
                Ok(n) if n >= 1 => shard_workers = n,
                _ => usage(),
            },
            "--upstream-conns" => match value("--upstream-conns").parse() {
                Ok(n) if n >= 1 => upstream_conns = n,
                _ => usage(),
            },
            "--out" => out = Some(value("--out")),
            "--store-out" => store_out = Some(value("--store-out")),
            "--min-warm-rate" => match value("--min-warm-rate").parse::<f64>() {
                Ok(r) if (0.0..=1.0).contains(&r) => min_warm_rate = Some(r),
                _ => usage(),
            },
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("scc-load: unknown flag `{other}`");
                usage();
            }
        }
    }
    if shards.is_empty() {
        let Some(addr) = addr else {
            eprintln!("scc-load: --connect is required (or --shards for the scaling mode)");
            usage();
        };
        cfg.addr = addr;
    }
    Args {
        cfg,
        out,
        store_out,
        min_warm_rate,
        shutdown,
        shards,
        spawn_dir,
        serve_bin,
        route_bin,
        shard_workers,
        upstream_conns,
    }
}

fn write_doc(path: &str, doc: &str) -> bool {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("scc-load: writing {path}: {e}");
        return false;
    }
    eprintln!("scc-load: wrote {path}");
    true
}

/// The `--shards` scaling mode: spawn each topology, run the load
/// through its router, emit the schema-v3 scaling document.
#[cfg(unix)]
fn run_scaling(args: &Args) -> ExitCode {
    use scc_serve::loadgen::scaling_bench_json;
    use scc_serve::spawn::{run_scaling_sweep, sibling_binary, SpawnConfig};

    let resolve = |explicit: &Option<String>, name: &str| match explicit {
        Some(p) => Ok(std::path::PathBuf::from(p)),
        None => sibling_binary(name),
    };
    let (serve_bin, route_bin) = match (
        resolve(&args.serve_bin, "scc-serve"),
        resolve(&args.route_bin, "scc-route"),
    ) {
        (Ok(s), Ok(r)) => (s, r),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("scc-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = match &args.spawn_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("scc-load-{}", std::process::id())),
    };
    let spawn = SpawnConfig {
        shards: 1,
        dir,
        serve_bin,
        route_bin,
        shard_workers: args.shard_workers,
        upstream_conns: args.upstream_conns,
    };
    let topologies = match run_scaling_sweep(&args.cfg, &spawn, &args.shards) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("scc-load: scaling sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = scaling_bench_json(&topologies);
    print!("{doc}");
    if let Some(path) = &args.out {
        if !write_doc(path, &doc) {
            return ExitCode::FAILURE;
        }
    }
    let errors: u64 = topologies.iter().map(|t| t.report.errors).sum();
    if errors > 0 {
        eprintln!("scc-load: {errors} requests failed across the sweep");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(not(unix))]
fn run_scaling(_args: &Args) -> ExitCode {
    eprintln!("scc-load: --shards needs Unix sockets; unavailable on this platform");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = parse_args();
    if !args.shards.is_empty() {
        return run_scaling(&args);
    }
    let report = match run(&args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scc-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = bench_json(&report);
    print!("{doc}");
    if let Some(path) = &args.out {
        if !write_doc(path, &doc) {
            return ExitCode::FAILURE;
        }
    }
    if args.store_out.is_some() || args.min_warm_rate.is_some() {
        let stats = match stats_object(&args.cfg.addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scc-load: reading final stats: {e}");
                return ExitCode::FAILURE;
            }
        };
        let store_doc = store_bench_json(&report, &stats);
        print!("{store_doc}");
        if let Some(path) = &args.store_out {
            if !write_doc(path, &store_doc) {
                return ExitCode::FAILURE;
            }
        }
        if let Some(min) = args.min_warm_rate {
            let rate = report.store_warm_hit_rate;
            if rate.is_nan() || rate < min {
                eprintln!(
                    "scc-load: warm-hit rate {rate:.4} below required {min:.4} \
                     ({} hits / {} lookups)",
                    report.store_hits,
                    report.store_hits + report.store_misses
                );
                return ExitCode::FAILURE;
            }
            eprintln!("scc-load: warm-hit rate {rate:.4} >= {min:.4}");
        }
    }
    if args.shutdown {
        match Client::connect(&args.cfg.addr).and_then(|mut c| c.request("{\"verb\":\"shutdown\"}"))
        {
            Ok(resp) => eprintln!("scc-load: shutdown → {}", resp.trim()),
            Err(e) => {
                eprintln!("scc-load: shutdown failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if report.errors > 0 {
        eprintln!("scc-load: {} requests failed", report.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
