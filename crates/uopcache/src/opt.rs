//! The optimized micro-op cache partition.
//!
//! Co-hosts one or more speculatively compacted versions of each code
//! region ("multiple optimized versions of a given code region may be
//! found in the micro-op cache", paper §III). The extended tag array holds
//! a 4-bit confidence counter per predicted invariant; the fetch engine's
//! line-selection logic filters candidates by confidence and ranks them by
//! profitability score (confidence sum + shrinkage).

use crate::config::UopCacheConfig;
use crate::stream::CompactedStream;
use scc_isa::trace::{Event, SinkHandle};
use scc_isa::Addr;

#[derive(Clone, Debug)]
struct OptEntry {
    stream: CompactedStream,
    ways: usize,
    hotness: u32,
    last_touch: u64,
}

/// Counters for the optimized partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptPartitionStats {
    /// Lookups with at least one candidate stream.
    pub hits: u64,
    /// Lookups with no candidate.
    pub misses: u64,
    /// Streams committed.
    pub inserts: u64,
    /// Streams evicted for capacity.
    pub evictions: u64,
    /// Streams dropped by explicit phase-out (stale invariants).
    pub phased_out: u64,
    /// Insert attempts rejected (stream too large or set full of
    /// higher-value streams).
    pub insert_rejects: u64,
}

impl OptPartitionStats {
    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The exhaustive destructuring makes this the single source of truth:
    /// adding a field without listing it here fails to compile.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let OptPartitionStats { hits, misses, inserts, evictions, phased_out, insert_rejects } =
            *self;
        vec![
            ("hits", hits),
            ("misses", misses),
            ("inserts", inserts),
            ("evictions", evictions),
            ("phased_out", phased_out),
            ("insert_rejects", insert_rejects),
        ]
    }
}

/// The optimized micro-op cache partition.
#[derive(Clone, Debug)]
pub struct OptPartition {
    config: UopCacheConfig,
    sets: Vec<Vec<OptEntry>>,
    stats: OptPartitionStats,
    last_decay: u64,
    sink: SinkHandle,
}

impl OptPartition {
    /// Creates an empty partition.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`UopCacheConfig::validate`]).
    pub fn new(config: UopCacheConfig) -> OptPartition {
        config.validate();
        OptPartition {
            sets: vec![Vec::new(); config.sets],
            config,
            stats: OptPartitionStats::default(),
            last_decay: 0,
            sink: SinkHandle::disabled(),
        }
    }

    /// The partition's configuration.
    pub fn config(&self) -> &UopCacheConfig {
        &self.config
    }

    /// Attaches an observability sink; stream insert/evict/phase-out
    /// events are emitted through it (see `scc_isa::trace`).
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    fn ways_needed(&self, s: &CompactedStream) -> usize {
        let uops: Vec<_> = s.uops.iter().map(|su| su.uop.clone()).collect();
        scc_isa::fusion::slot_count(&uops).div_ceil(self.config.uops_per_line).max(1)
    }

    fn ways_used(&self, set: usize) -> usize {
        self.sets[set].iter().map(|e| e.ways).sum()
    }

    /// All candidate streams whose entry point is `pc`, bumping hotness on
    /// each (they were all read out and tag-compared).
    pub fn lookup(&mut self, pc: Addr, now: u64) -> Vec<&CompactedStream> {
        let region = scc_isa::region(pc);
        let set = self.config.set_of(region);
        let mut any = false;
        for e in &mut self.sets[set] {
            if e.stream.region == region && e.stream.entry == pc {
                e.hotness = e.hotness.saturating_add(1);
                e.last_touch = now;
                any = true;
            }
        }
        if any {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.sets[set]
            .iter()
            .filter(|e| e.stream.region == region && e.stream.entry == pc)
            .map(|e| &e.stream)
            .collect()
    }

    /// Records one fetch lookup at `pc` — hit/miss stats plus a hotness
    /// bump on every matching candidate, exactly as [`lookup`](Self::lookup)
    /// does — but without materializing the candidate list. Returns the
    /// candidate count; pair with [`candidates`](Self::candidates) for an
    /// allocation-free fetch path.
    pub fn touch(&mut self, pc: Addr, now: u64) -> usize {
        let region = scc_isa::region(pc);
        let set = self.config.set_of(region);
        let mut n = 0usize;
        for e in &mut self.sets[set] {
            if e.stream.region == region && e.stream.entry == pc {
                e.hotness = e.hotness.saturating_add(1);
                e.last_touch = now;
                n += 1;
            }
        }
        if n > 0 {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        n
    }

    /// Iterates the candidate streams whose entry point is `pc`, each with
    /// its current hotness counter, without touching stats, hotness, or the
    /// heap. A set holds at most `ways` streams, so the scan is a few tag
    /// compares.
    pub fn candidates(&self, pc: Addr) -> impl Iterator<Item = (&CompactedStream, u32)> {
        let region = scc_isa::region(pc);
        let set = self.config.set_of(region);
        self.sets[set]
            .iter()
            .filter(move |e| e.stream.region == region && e.stream.entry == pc)
            .map(|e| (&e.stream, e.hotness))
    }

    /// Non-mutating candidate scan (profitability re-checks, tests).
    pub fn peek(&self, pc: Addr) -> Vec<&CompactedStream> {
        let region = scc_isa::region(pc);
        let set = self.config.set_of(region);
        self.sets[set]
            .iter()
            .filter(|e| e.stream.region == region && e.stream.entry == pc)
            .map(|e| &e.stream)
            .collect()
    }

    /// Hotness of the stream with `stream_id` (0 if absent).
    pub fn hotness(&self, stream_id: u64) -> u32 {
        self.sets
            .iter()
            .flatten()
            .find(|e| e.stream.stream_id == stream_id)
            .map_or(0, |e| e.hotness)
    }

    /// Commits a compacted stream. The victim, when space is needed, is
    /// the lowest (hotness, profitability score) unlocked entry; the
    /// insert is rejected instead if every resident stream outranks the
    /// newcomer.
    pub fn insert(&mut self, stream: CompactedStream, now: u64) -> bool {
        let needed = self.ways_needed(&stream);
        if needed > self.config.max_ways_per_region || stream.uops.is_empty() {
            self.stats.insert_rejects += 1;
            return false;
        }
        let set = self.config.set_of(stream.region);
        // Replace an identical prior version (same region/entry and equal
        // or worse score) rather than co-hosting endless duplicates.
        if let Some(i) = self.sets[set].iter().position(|e| {
            e.stream.region == stream.region
                && e.stream.entry == stream.entry
                && e.stream.uops == stream.uops
        }) {
            self.sets[set][i].stream = stream;
            self.sets[set][i].last_touch = now;
            return true;
        }
        while self.ways_used(set) + needed > self.config.ways {
            let newcomer_rank = stream.profitability_score();
            let victim = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.hotness, e.stream.profitability_score(), e.last_touch))
                .map(|(i, _)| i);
            match victim {
                Some(i)
                    if self.sets[set][i].hotness == 0
                        || self.sets[set][i].stream.profitability_score() <= newcomer_rank =>
                {
                    let evicted = self.sets[set].remove(i);
                    self.stats.evictions += 1;
                    self.sink.emit(|| Event::StreamEvicted {
                        cycle: now,
                        stream_id: evicted.stream.stream_id,
                        region: evicted.stream.region,
                        reason: "capacity",
                    });
                }
                _ => {
                    self.stats.insert_rejects += 1;
                    return false;
                }
            }
        }
        if self.sink.is_enabled() {
            self.sink.emit(|| Event::StreamInserted {
                cycle: now,
                stream_id: stream.stream_id,
                region: stream.region,
                shrinkage: stream.shrinkage(),
                invariants: stream.invariants.len(),
            });
        }
        self.sets[set].push(OptEntry { stream, ways: needed, hotness: 1, last_touch: now });
        self.stats.inserts += 1;
        true
    }

    /// Rewards a stream whose invariant validated: bumps that invariant's
    /// confidence counter (paper §III: counters are "updated during
    /// instruction execution whenever a prediction is validated").
    pub fn reward(&mut self, stream_id: u64, invariant_idx: usize) {
        if let Some(e) = self.entry_mut(stream_id) {
            if let Some(t) = e.stream.invariants.get_mut(invariant_idx) {
                t.confidence.inc();
            }
        }
    }

    /// Penalizes a stream whose invariant mispredicted. The penalty is
    /// steep (−4) so stale streams fall below the streaming threshold
    /// quickly and get phased out.
    pub fn penalize(&mut self, stream_id: u64, invariant_idx: usize) {
        if let Some(e) = self.entry_mut(stream_id) {
            if let Some(t) = e.stream.invariants.get_mut(invariant_idx) {
                t.confidence.dec_by(4);
            }
        }
    }

    /// Drops streams for `region` whose minimum invariant confidence fell
    /// below `min_confidence` — the paper's gradual phase-out of stale
    /// streams. Returns how many were dropped.
    pub fn phase_out(&mut self, region: Addr, min_confidence: u8) -> usize {
        let set = self.config.set_of(region);
        let before = self.sets[set].len();
        if self.sink.is_enabled() {
            for e in &self.sets[set] {
                if e.stream.region == region && e.stream.min_confidence() < min_confidence {
                    self.sink.emit(|| Event::StreamEvicted {
                        cycle: self.last_decay,
                        stream_id: e.stream.stream_id,
                        region,
                        reason: "phase-out",
                    });
                }
            }
        }
        self.sets[set].retain(|e| {
            e.stream.region != region || e.stream.min_confidence() >= min_confidence
        });
        let dropped = before - self.sets[set].len();
        self.stats.phased_out += dropped as u64;
        dropped
    }

    /// Drops every stream belonging to `region` (self-modifying code).
    pub fn invalidate(&mut self, region: Addr) {
        let set = self.config.set_of(region);
        if self.sink.is_enabled() {
            for e in &self.sets[set] {
                if e.stream.region == region {
                    self.sink.emit(|| Event::StreamEvicted {
                        cycle: self.last_decay,
                        stream_id: e.stream.stream_id,
                        region,
                        reason: "invalidated",
                    });
                }
            }
        }
        self.sets[set].retain(|e| e.stream.region != region);
    }

    /// Advances time, decaying hotness per the (fast, 3-cycle) optimized
    /// decay period.
    pub fn tick(&mut self, now: u64) {
        let periods = (now.saturating_sub(self.last_decay)) / self.config.decay_period;
        if periods == 0 {
            return;
        }
        self.last_decay += periods * self.config.decay_period;
        let dec = periods.min(u32::MAX as u64) as u32;
        for set in &mut self.sets {
            for e in set {
                e.hotness = e.hotness.saturating_sub(dec);
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> OptPartitionStats {
        self.stats
    }

    /// Number of resident streams.
    pub fn resident_streams(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    fn entry_mut(&mut self, stream_id: u64) -> Option<&mut OptEntry> {
        self.sets.iter_mut().flatten().find(|e| e.stream.stream_id == stream_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{Invariant, StreamUop, TaggedInvariant};
    use scc_isa::{Op, Uop};

    fn cfg() -> UopCacheConfig {
        UopCacheConfig::opt_partition(4)
    }

    fn stream(region: Addr, entry: Addr, id: u64, uops: usize, conf: u8) -> CompactedStream {
        CompactedStream {
            region,
            entry,
            uops: vec![StreamUop::plain(Uop::new(Op::Nop)); uops],
            final_live_outs: vec![],
            final_live_out_cc: None,
            invariants: vec![TaggedInvariant::new(
                Invariant::Data { pc: entry, slot: 0, value: 7 },
                conf,
            )],
            exit: region + 32,
            orig_len: uops as u32 + 4,
            breakdown: Default::default(),
            stream_id: id,
        }
    }

    #[test]
    fn insert_and_lookup_by_entry_pc() {
        let mut p = OptPartition::new(cfg());
        assert!(p.insert(stream(0x40, 0x44, 1, 3, 8), 0));
        assert!(p.lookup(0x40, 1).is_empty(), "entry pc must match exactly");
        let c = p.lookup(0x44, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].stream_id, 1);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn cohosts_multiple_versions() {
        let mut p = OptPartition::new(cfg());
        assert!(p.insert(stream(0x40, 0x40, 1, 3, 8), 0));
        let mut v2 = stream(0x40, 0x40, 2, 2, 12);
        v2.invariants[0].invariant = Invariant::Data { pc: 0x48, slot: 0, value: 9 };
        assert!(p.insert(v2, 1));
        assert_eq!(p.lookup(0x40, 2).len(), 2);
    }

    #[test]
    fn identical_version_replaces_not_duplicates() {
        let mut p = OptPartition::new(cfg());
        assert!(p.insert(stream(0x40, 0x40, 1, 3, 8), 0));
        assert!(p.insert(stream(0x40, 0x40, 2, 3, 10), 1));
        assert_eq!(p.resident_streams(), 1);
        assert_eq!(p.peek(0x40)[0].stream_id, 2);
    }

    #[test]
    fn reward_and_penalize_move_confidence() {
        let mut p = OptPartition::new(cfg());
        p.insert(stream(0x40, 0x40, 1, 3, 8), 0);
        p.reward(1, 0);
        assert_eq!(p.peek(0x40)[0].invariants[0].confidence.get(), 9);
        p.penalize(1, 0);
        assert_eq!(p.peek(0x40)[0].invariants[0].confidence.get(), 5);
        // Unknown ids / indices are ignored.
        p.reward(99, 0);
        p.penalize(1, 7);
    }

    #[test]
    fn phase_out_drops_stale_streams() {
        let mut p = OptPartition::new(cfg());
        p.insert(stream(0x40, 0x40, 1, 3, 2), 0);
        p.insert(stream(0x40, 0x48, 2, 3, 14), 0);
        assert_eq!(p.phase_out(0x40, 5), 1);
        assert_eq!(p.resident_streams(), 1);
        assert_eq!(p.peek(0x48)[0].stream_id, 2);
        assert_eq!(p.stats().phased_out, 1);
    }

    #[test]
    fn eviction_respects_value() {
        let mut p = OptPartition::new(cfg()); // 4 ways per set
        let r = |i: u64| 0x20 + i * 4 * 32; // same set
        // Two 2-way streams fill the set.
        p.insert(stream(r(0), r(0), 1, 12, 14), 0);
        p.insert(stream(r(1), r(1), 2, 12, 2), 0);
        // Heat stream 1.
        for t in 0..5 {
            p.lookup(r(0), t);
        }
        // Newcomer with a middling score evicts the cold, low-conf stream 2.
        assert!(p.insert(stream(r(2), r(2), 3, 12, 8), 10));
        assert!(p.peek(r(0)).len() == 1, "hot stream survives");
        assert!(p.peek(r(1)).is_empty(), "cold stream evicted");
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn oversized_stream_rejected() {
        let mut p = OptPartition::new(cfg());
        assert!(!p.insert(stream(0x40, 0x40, 1, 19, 8), 0));
        assert_eq!(p.stats().insert_rejects, 1);
    }

    #[test]
    fn decay_is_fast() {
        let mut p = OptPartition::new(cfg());
        p.insert(stream(0x40, 0x40, 1, 3, 8), 0);
        for t in 0..6 {
            p.lookup(0x40, t);
        }
        let h = p.hotness(1);
        p.tick(9); // 3 decay periods of 3 cycles
        assert_eq!(p.hotness(1), h.saturating_sub(3));
    }

    #[test]
    fn sink_sees_stream_lifecycle() {
        use scc_isa::trace::{shared, CollectSink, Event, SinkHandle};
        let mut p = OptPartition::new(cfg());
        let collect = shared(CollectSink::default());
        p.attach_sink(SinkHandle::attached(collect.clone()));
        let r = |i: u64| 0x20 + i * 4 * 32;
        p.insert(stream(r(0), r(0), 1, 12, 14), 0);
        p.insert(stream(r(1), r(1), 2, 12, 2), 0);
        for t in 0..5 {
            p.lookup(r(0), t);
        }
        p.insert(stream(r(2), r(2), 3, 12, 8), 10); // evicts stream 2
        p.insert(stream(0x40, 0x40, 4, 3, 1), 11);
        p.phase_out(0x40, 5); // drops stream 4
        let events = collect.borrow().events.clone();
        let inserts =
            events.iter().filter(|e| matches!(e, Event::StreamInserted { .. })).count();
        assert_eq!(inserts as u64, p.stats().inserts);
        let capacity = events
            .iter()
            .filter(|e| matches!(e, Event::StreamEvicted { reason: "capacity", .. }))
            .count();
        let phased = events
            .iter()
            .filter(|e| matches!(e, Event::StreamEvicted { reason: "phase-out", .. }))
            .count();
        assert_eq!(capacity as u64, p.stats().evictions);
        assert_eq!(phased as u64, p.stats().phased_out);
    }

    #[test]
    fn invalidate_region() {
        let mut p = OptPartition::new(cfg());
        p.insert(stream(0x40, 0x40, 1, 3, 8), 0);
        p.insert(stream(0x40, 0x48, 2, 3, 8), 0);
        p.invalidate(0x40);
        assert_eq!(p.resident_streams(), 0);
    }
}
