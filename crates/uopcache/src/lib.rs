//! Baseline and partitioned micro-op caches for the SCC reproduction.
//!
//! The paper's central storage structure is a micro-op cache (2304 micro-ops:
//! 48 sets × 8 ways × 6 micro-ops, Table I) extended in three ways:
//!
//! 1. **Partitioning** into an *unoptimized* partition holding decoded
//!    micro-op lines and an *optimized* partition co-hosting one or more
//!    speculatively compacted versions of the same code region.
//! 2. An **extended tag array**: per-line lock bits (lines under
//!    compaction must not be evicted) on the unoptimized side, and a set
//!    of 4-bit saturating confidence counters — one per predicted
//!    invariant — on the optimized side.
//! 3. **Hotness-based replacement** (after Ren et al.): every access
//!    increments a line's hotness; hotness decays periodically (every 28
//!    cycles for unoptimized lines, every 3 for optimized ones — the
//!    paper's tuned values), and the coldest line is the victim.
//!
//! This crate also defines [`CompactedStream`], the exchange type between
//! the SCC engine (`scc-core`, which produces streams), this cache (which
//! stores them), and the pipeline's fetch engine (which streams them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod opt;
mod stream;
mod unopt;

pub use config::UopCacheConfig;
pub use opt::{OptPartition, OptPartitionStats};
pub use stream::{
    CompactedStream, ElimBreakdown, Invariant, StreamUop, TaggedInvariant,
};
pub use unopt::{UnoptLookup, UnoptPartition, UnoptPartitionStats};
