//! The unoptimized micro-op cache partition.
//!
//! Holds decoded micro-ops per 32-byte region (a region may occupy up to
//! three ways ≈ 18 fused micro-ops). The extended tag array carries a
//! *lock bit* per region under compaction — locked regions are never
//! evicted (paper §III) — and a hotness counter driving both replacement
//! (Ren et al.) and compaction triggering.

use crate::config::UopCacheConfig;
use scc_isa::trace::{Event, SinkHandle};
use scc_isa::{Addr, Uop};
use std::sync::Arc;

#[derive(Clone, Debug)]
struct RegionEntry {
    region: Addr,
    uops: Arc<[Uop]>,
    ways: usize,
    hotness: u32,
    locked: bool,
    last_touch: u64,
}

/// Result of a successful unoptimized-partition lookup.
#[derive(Debug)]
pub struct UnoptLookup {
    /// All cached micro-ops of the region, in program order. Shared with
    /// the cache line itself (`Arc`), so the fetch engine can keep
    /// delivering from it without copying the micro-ops out per fetch.
    pub uops: Arc<[Uop]>,
    /// Hotness after this access.
    pub hotness: u32,
    /// True exactly when this access pushed the line across the hotness
    /// threshold — the fetch engine turns this into a compaction request.
    pub became_hot: bool,
}

/// Counters for the unoptimized partition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnoptPartitionStats {
    /// Lookups that found the region (all ways present).
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Regions filled.
    pub fills: u64,
    /// Regions evicted to make room.
    pub evictions: u64,
    /// Fill attempts rejected (region too large or set full of locked
    /// lines).
    pub fill_rejects: u64,
}

impl UnoptPartitionStats {
    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The exhaustive destructuring makes this the single source of truth:
    /// adding a field without listing it here fails to compile.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let UnoptPartitionStats { hits, misses, fills, evictions, fill_rejects } = *self;
        vec![
            ("hits", hits),
            ("misses", misses),
            ("fills", fills),
            ("evictions", evictions),
            ("fill_rejects", fill_rejects),
        ]
    }
}

/// The unoptimized micro-op cache partition.
#[derive(Clone, Debug)]
pub struct UnoptPartition {
    config: UopCacheConfig,
    sets: Vec<Vec<RegionEntry>>,
    stats: UnoptPartitionStats,
    last_decay: u64,
    sink: SinkHandle,
}

impl UnoptPartition {
    /// Creates an empty partition.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`UopCacheConfig::validate`]).
    pub fn new(config: UopCacheConfig) -> UnoptPartition {
        config.validate();
        UnoptPartition {
            sets: vec![Vec::new(); config.sets],
            config,
            stats: UnoptPartitionStats::default(),
            last_decay: 0,
            sink: SinkHandle::disabled(),
        }
    }

    /// The partition's configuration.
    pub fn config(&self) -> &UopCacheConfig {
        &self.config
    }

    /// Attaches an observability sink; fill and eviction events are
    /// emitted through it (see `scc_isa::trace`).
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    fn ways_needed(&self, uops: &[Uop]) -> usize {
        // Micro-fused pairs occupy one slot (Table I counts fused µops).
        scc_isa::fusion::slot_count(uops).div_ceil(self.config.uops_per_line).max(1)
    }

    fn ways_used(&self, set: usize) -> usize {
        self.sets[set].iter().map(|e| e.ways).sum()
    }

    /// Looks up `region`; on a hit, bumps hotness and reports whether the
    /// hotness threshold was just crossed.
    pub fn lookup(&mut self, region: Addr, now: u64) -> Option<UnoptLookup> {
        let set = self.config.set_of(region);
        let threshold = self.config.hotness_threshold;
        match self.sets[set].iter_mut().find(|e| e.region == region) {
            Some(e) => {
                let was_hot = e.hotness >= threshold;
                e.hotness = e.hotness.saturating_add(1);
                e.last_touch = now;
                let became_hot = !was_hot && e.hotness >= threshold;
                self.stats.hits += 1;
                Some(UnoptLookup { uops: Arc::clone(&e.uops), hotness: e.hotness, became_hot })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at the region's cached micro-ops without touching hotness or
    /// stats (used by the SCC unit while compacting).
    pub fn peek(&self, region: Addr) -> Option<&[Uop]> {
        let set = self.config.set_of(region);
        self.sets[set].iter().find(|e| e.region == region).map(|e| &e.uops[..])
    }

    /// True if the region is fully resident.
    pub fn contains(&self, region: Addr) -> bool {
        self.peek(region).is_some()
    }

    /// Current hotness of the region (0 if absent).
    pub fn hotness(&self, region: Addr) -> u32 {
        let set = self.config.set_of(region);
        self.sets[set].iter().find(|e| e.region == region).map_or(0, |e| e.hotness)
    }

    /// Installs the decoded micro-ops of `region`. Returns false (and
    /// counts a reject) if the region exceeds three ways or the set cannot
    /// make room without evicting a locked line.
    pub fn fill(&mut self, region: Addr, uops: Vec<Uop>, now: u64) -> bool {
        if uops.is_empty()
            || scc_isa::fusion::slot_count(&uops) > self.config.region_capacity_uops()
        {
            self.stats.fill_rejects += 1;
            return false;
        }
        if self.contains(region) {
            return true;
        }
        let needed = self.ways_needed(&uops);
        let set = self.config.set_of(region);
        while self.ways_used(set) + needed > self.config.ways {
            // Evict the coldest unlocked region (ties: least recently
            // touched).
            let victim = self.sets[set]
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.locked)
                .min_by_key(|(_, e)| (e.hotness, e.last_touch))
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let evicted = self.sets[set].remove(i);
                    self.stats.evictions += 1;
                    self.sink
                        .emit(|| Event::RegionEvicted { cycle: now, region: evicted.region });
                }
                None => {
                    self.stats.fill_rejects += 1;
                    return false;
                }
            }
        }
        let len = uops.len();
        self.sets[set].push(RegionEntry {
            region,
            uops: uops.into(),
            ways: needed,
            hotness: 1,
            locked: false,
            last_touch: now,
        });
        self.stats.fills += 1;
        self.sink.emit(|| Event::RegionFilled { cycle: now, region, uops: len });
        true
    }

    /// Sets the lock bit on `region` (under compaction). Returns false if
    /// absent.
    pub fn lock(&mut self, region: Addr) -> bool {
        self.set_lock(region, true)
    }

    /// Clears the lock bit on `region`.
    pub fn unlock(&mut self, region: Addr) -> bool {
        self.set_lock(region, false)
    }

    fn set_lock(&mut self, region: Addr, value: bool) -> bool {
        let set = self.config.set_of(region);
        match self.sets[set].iter_mut().find(|e| e.region == region) {
            Some(e) => {
                e.locked = value;
                true
            }
            None => false,
        }
    }

    /// Resets the region's hotness to zero — used after a discarded
    /// compaction so the region re-heats and retries once the predictors
    /// have trained further.
    pub fn reset_hotness(&mut self, region: Addr) {
        let set = self.config.set_of(region);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.region == region) {
            e.hotness = 0;
        }
    }

    /// Drops the region (self-modifying-code invalidation).
    pub fn invalidate(&mut self, region: Addr) {
        let set = self.config.set_of(region);
        self.sets[set].retain(|e| e.region != region);
    }

    /// Advances time; decays all hotness counters by 1 per elapsed
    /// [`UopCacheConfig::decay_period`].
    pub fn tick(&mut self, now: u64) {
        let periods = (now.saturating_sub(self.last_decay)) / self.config.decay_period;
        if periods == 0 {
            return;
        }
        self.last_decay += periods * self.config.decay_period;
        let dec = periods.min(u32::MAX as u64) as u32;
        for set in &mut self.sets {
            for e in set {
                e.hotness = e.hotness.saturating_sub(dec);
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> UnoptPartitionStats {
        self.stats
    }

    /// Number of resident regions (for tests and reports).
    pub fn resident_regions(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::{Op, Uop};

    fn uops(n: usize) -> Vec<Uop> {
        (0..n)
            .map(|i| {
                let mut u = Uop::new(Op::Nop);
                u.macro_addr = i as u64;
                u.macro_len = 1;
                u
            })
            .collect()
    }

    fn part() -> UnoptPartition {
        UnoptPartition::new(UopCacheConfig {
            sets: 4,
            ways: 8,
            uops_per_line: 6,
            max_ways_per_region: 3,
            hotness_threshold: 3,
            decay_period: 28,
        })
    }

    #[test]
    fn fill_then_lookup() {
        let mut p = part();
        assert!(p.lookup(0x40, 0).is_none());
        assert!(p.fill(0x40, uops(7), 0));
        let l = p.lookup(0x40, 1).unwrap();
        assert_eq!(l.uops.len(), 7);
        assert_eq!(l.hotness, 2);
        assert!(!l.became_hot);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn hotness_threshold_fires_once() {
        let mut p = part();
        p.fill(0x40, uops(3), 0);
        assert!(!p.lookup(0x40, 1).unwrap().became_hot); // 2
        assert!(p.lookup(0x40, 2).unwrap().became_hot); // 3: crossed
        assert!(!p.lookup(0x40, 3).unwrap().became_hot); // already hot
    }

    #[test]
    fn region_too_large_rejected() {
        let mut p = part();
        assert!(!p.fill(0x40, uops(19), 0));
        assert_eq!(p.stats().fill_rejects, 1);
        assert!(p.fill(0x40, uops(18), 0), "exactly 18 fits (3 ways)");
    }

    #[test]
    fn eviction_prefers_cold_unlocked() {
        let mut p = part();
        // Fill the set at region stride 4*32 so all map to set 1.
        let r = |i: u64| 0x20 + i * 4 * 32;
        p.fill(r(0), uops(12), 0); // 2 ways
        p.fill(r(1), uops(12), 0); // 2 ways
        p.fill(r(2), uops(12), 0); // 2 ways
        p.fill(r(3), uops(12), 0); // 2 ways -> set full (8 ways)
        // Heat up r(0); r(1) stays cold.
        for t in 0..5 {
            p.lookup(r(0), t);
        }
        assert!(p.fill(r(4), uops(6), 10));
        assert!(p.contains(r(0)), "hot region survives");
        assert!(!p.contains(r(1)), "coldest region evicted");
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn locked_regions_never_evicted() {
        let mut p = part();
        let r = |i: u64| 0x20 + i * 4 * 32;
        for i in 0..4 {
            p.fill(r(i), uops(12), 0);
        }
        for i in 0..4 {
            assert!(p.lock(r(i)));
        }
        assert!(!p.fill(r(4), uops(6), 1), "set of locked lines rejects fills");
        p.unlock(r(2));
        assert!(p.fill(r(4), uops(6), 2));
        assert!(!p.contains(r(2)));
    }

    #[test]
    fn decay_reduces_hotness() {
        let mut p = part();
        p.fill(0x40, uops(3), 0);
        for t in 1..=5 {
            p.lookup(0x40, t);
        }
        assert_eq!(p.hotness(0x40), 6);
        p.tick(28);
        assert_eq!(p.hotness(0x40), 5);
        p.tick(28 * 10);
        assert_eq!(p.hotness(0x40), 0);
    }

    #[test]
    fn invalidate_removes() {
        let mut p = part();
        p.fill(0x40, uops(3), 0);
        p.invalidate(0x40);
        assert!(!p.contains(0x40));
        assert_eq!(p.resident_regions(), 0);
    }

    #[test]
    fn peek_is_silent() {
        let mut p = part();
        p.fill(0x40, uops(3), 0);
        let s = p.stats();
        let h = p.hotness(0x40);
        assert!(p.peek(0x40).is_some());
        assert_eq!(p.stats(), s);
        assert_eq!(p.hotness(0x40), h);
    }

    #[test]
    fn sink_sees_fills_and_evictions() {
        use scc_isa::trace::{shared, CollectSink, SinkHandle};
        let mut p = part();
        let collect = shared(CollectSink::default());
        p.attach_sink(SinkHandle::attached(collect.clone()));
        let r = |i: u64| 0x20 + i * 4 * 32;
        for i in 0..4 {
            p.fill(r(i), uops(12), i);
        }
        p.fill(r(4), uops(6), 10); // evicts one cold region
        let events = &collect.borrow().events;
        let fills = events.iter().filter(|e| matches!(e, Event::RegionFilled { .. })).count();
        let evictions =
            events.iter().filter(|e| matches!(e, Event::RegionEvicted { .. })).count();
        assert_eq!(fills as u64, p.stats().fills);
        assert_eq!(evictions as u64, p.stats().evictions);
    }

    #[test]
    fn double_fill_is_idempotent() {
        let mut p = part();
        assert!(p.fill(0x40, uops(3), 0));
        assert!(p.fill(0x40, uops(3), 1));
        assert_eq!(p.stats().fills, 1);
        assert_eq!(p.resident_regions(), 1);
    }
}
