//! Compacted micro-op streams and their predicted invariants — the
//! exchange type between the SCC engine, the optimized partition, and the
//! fetch engine.

use scc_isa::{Addr, CcFlags, Reg, Uop};
use scc_predictors::SatCounter;

/// A predicted program invariant a compacted stream depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// A speculative *data* invariant: the micro-op at `pc` (slot
    /// `slot` of its macro) is predicted to produce `value`.
    Data {
        /// Macro address of the prediction-source micro-op.
        pc: Addr,
        /// Micro-op slot within the macro.
        slot: u8,
        /// Predicted result value.
        value: i64,
    },
    /// A speculative *control* invariant: the branch at `pc` is predicted
    /// to go `taken` toward `target`.
    Control {
        /// Macro address of the branch.
        pc: Addr,
        /// Predicted direction.
        taken: bool,
        /// Predicted next PC.
        target: Addr,
    },
}

impl Invariant {
    /// The PC this invariant is anchored to.
    pub fn pc(&self) -> Addr {
        match self {
            Invariant::Data { pc, .. } | Invariant::Control { pc, .. } => *pc,
        }
    }

    /// True for data invariants.
    pub fn is_data(&self) -> bool {
        matches!(self, Invariant::Data { .. })
    }
}

/// An invariant plus its 4-bit confidence counter, stored in the optimized
/// partition's extended tag array (paper §III: "compacted streams … are
/// tagged by a set of saturating counters to track confidence for each of
/// the predicted invariants").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedInvariant {
    /// The predicted invariant.
    pub invariant: Invariant,
    /// 4-bit saturating confidence, updated on validation/squash.
    pub confidence: SatCounter,
}

impl TaggedInvariant {
    /// Tags an invariant with an initial confidence seeded from the
    /// predictor's confidence at compaction time (rescaled 0–15).
    pub fn new(invariant: Invariant, initial_confidence: u8) -> TaggedInvariant {
        TaggedInvariant {
            invariant,
            confidence: SatCounter::with_value(initial_confidence.min(15), 15),
        }
    }
}

/// One element of a compacted stream: a surviving (possibly rewritten)
/// micro-op plus its speculative metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamUop {
    /// The micro-op to dispatch (operands may have been rewritten to
    /// immediates by speculative constant propagation).
    pub uop: Uop,
    /// If this micro-op is a *prediction source*, the index of the
    /// invariant it validates in [`CompactedStream::invariants`].
    pub pred_source: Option<usize>,
    /// Live-out register values to be inlined at rename *with* this
    /// micro-op (visible even if this micro-op itself mispredicts — they
    /// derive only from strictly older invariants; paper §IV "Inlining
    /// Live Outs").
    pub live_outs: Vec<(Reg, i64)>,
    /// Live-out condition codes, when the flags' last writer was
    /// eliminated (the SCC register file tracks "live integer and
    /// condition-code registers", paper §III).
    pub live_out_cc: Option<CcFlags>,
    /// For kept branches: the *architectural* next PC the compaction
    /// followed (pivot target or predicted target). The fetch engine
    /// validates the resolved branch against this — not against the next
    /// surviving micro-op's address, which skips folded code.
    pub branch_next: Option<Addr>,
    /// Micro-ops the engine eliminated between the previous surviving
    /// element and this one, in scan order. Program-distance accounting
    /// credits eliminated work to the *oldest* surviving micro-op at or
    /// after it, so a stream squashed mid-flight still counts exactly
    /// the eliminated micro-ops its committed prefix covers (the
    /// resumed unoptimized fetch re-executes — and re-counts — the
    /// rest). Eliminations after the last surviving element are the
    /// stream's tail: `shrinkage() - Σ elided_before`, credited at the
    /// final element.
    pub elided_before: u32,
}

impl StreamUop {
    /// A plain pass-through stream element.
    pub fn plain(uop: Uop) -> StreamUop {
        StreamUop {
            uop,
            pred_source: None,
            live_outs: Vec::new(),
            live_out_cc: None,
            branch_next: None,
            elided_before: 0,
        }
    }
}

/// Which optimizations contributed to a stream, and how many micro-ops
/// each eliminated or rewrote — feeds Figure 6's per-optimization
/// breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ElimBreakdown {
    /// Register-immediate moves eliminated (speculative move elimination).
    pub move_elim: u32,
    /// Micro-ops eliminated by speculative constant folding.
    pub fold: u32,
    /// Micro-ops rewritten reg→imm by speculative constant propagation
    /// (not eliminated, but cheaper downstream).
    pub propagated: u32,
    /// Branches eliminated by speculative branch folding.
    pub branch_fold: u32,
    /// Micro-ops eliminated past a predicted (unfolded) branch — the
    /// cross-basic-block share.
    pub cross_block: u32,
}

impl ElimBreakdown {
    /// Total micro-ops removed from the stream.
    pub fn eliminated(&self) -> u32 {
        self.move_elim + self.fold + self.branch_fold + self.cross_block
    }
}

/// A speculatively compacted micro-op stream for one 32-byte code region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactedStream {
    /// Home region (index/tag in the optimized partition).
    pub region: Addr,
    /// Address of the first macro-instruction covered: fetch matches this
    /// against the fetch PC.
    pub entry: Addr,
    /// The surviving micro-ops in stream order.
    pub uops: Vec<StreamUop>,
    /// Live-outs inlined when the last micro-op of the stream issues
    /// (paper: "live outs are also inlined at the end of every compacted
    /// instruction stream").
    pub final_live_outs: Vec<(Reg, i64)>,
    /// Condition-code live-out inlined at stream end, when the flags'
    /// last writer was eliminated.
    pub final_live_out_cc: Option<CcFlags>,
    /// Predicted invariants with confidence tags.
    pub invariants: Vec<TaggedInvariant>,
    /// Where fetch resumes after the stream.
    pub exit: Addr,
    /// Number of micro-ops in the unoptimized original.
    pub orig_len: u32,
    /// Per-optimization elimination counts.
    pub breakdown: ElimBreakdown,
    /// Unique id assigned by the compaction engine.
    pub stream_id: u64,
}

impl CompactedStream {
    /// Micro-ops eliminated relative to the original (the paper's
    /// "compaction potential … measured as the shrinkage in the number of
    /// instructions").
    pub fn shrinkage(&self) -> u32 {
        self.orig_len.saturating_sub(self.uops.len() as u32)
    }

    /// Eliminated micro-ops credited to surviving elements via
    /// [`StreamUop::elided_before`]; never exceeds [`shrinkage`]
    /// (Self::shrinkage), and the difference is the tail credited at
    /// the stream's final element.
    pub fn credited_elided(&self) -> u32 {
        self.uops.iter().map(|su| su.elided_before).sum()
    }

    /// Sum of all invariant confidence counters — one half of the
    /// profitability score.
    pub fn confidence_sum(&self) -> u32 {
        self.invariants.iter().map(|t| t.confidence.get() as u32).sum()
    }

    /// Lowest confidence across invariants (15 when there are none).
    pub fn min_confidence(&self) -> u8 {
        self.invariants.iter().map(|t| t.confidence.get()).min().unwrap_or(15)
    }

    /// The paper's profitability score: confidence sum plus compaction
    /// potential.
    pub fn profitability_score(&self) -> u32 {
        self.confidence_sum() + self.shrinkage()
    }

    /// Number of data invariants.
    pub fn data_invariants(&self) -> usize {
        self.invariants.iter().filter(|t| t.invariant.is_data()).count()
    }

    /// Number of control invariants.
    pub fn control_invariants(&self) -> usize {
        self.invariants.len() - self.data_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::Op;

    fn stream_with(shrink: u32, confs: &[u8]) -> CompactedStream {
        CompactedStream {
            region: 0x100,
            entry: 0x100,
            uops: vec![StreamUop::plain(Uop::new(Op::Nop)); 3],
            final_live_outs: vec![],
            final_live_out_cc: None,
            invariants: confs
                .iter()
                .map(|&c| {
                    TaggedInvariant::new(Invariant::Data { pc: 0x100, slot: 0, value: 1 }, c)
                })
                .collect(),
            exit: 0x120,
            orig_len: 3 + shrink,
            breakdown: ElimBreakdown::default(),
            stream_id: 1,
        }
    }

    #[test]
    fn shrinkage_and_score() {
        let s = stream_with(5, &[10, 3]);
        assert_eq!(s.shrinkage(), 5);
        assert_eq!(s.confidence_sum(), 13);
        assert_eq!(s.profitability_score(), 18);
        assert_eq!(s.min_confidence(), 3);
    }

    #[test]
    fn empty_invariants_are_fully_confident() {
        let s = stream_with(2, &[]);
        assert_eq!(s.min_confidence(), 15);
        assert_eq!(s.confidence_sum(), 0);
    }

    #[test]
    fn invariant_kinds() {
        let d = Invariant::Data { pc: 4, slot: 0, value: 9 };
        let c = Invariant::Control { pc: 8, taken: true, target: 16 };
        assert!(d.is_data());
        assert!(!c.is_data());
        assert_eq!(d.pc(), 4);
        assert_eq!(c.pc(), 8);
    }

    #[test]
    fn tagged_invariant_clamps_confidence() {
        let t = TaggedInvariant::new(Invariant::Data { pc: 0, slot: 0, value: 0 }, 200);
        assert_eq!(t.confidence.get(), 15);
    }

    #[test]
    fn breakdown_totals() {
        let b = ElimBreakdown { move_elim: 1, fold: 2, propagated: 9, branch_fold: 3, cross_block: 4 };
        assert_eq!(b.eliminated(), 10, "propagated uops are rewritten, not eliminated");
    }

    #[test]
    fn invariant_counts() {
        let mut s = stream_with(0, &[5]);
        s.invariants.push(TaggedInvariant::new(
            Invariant::Control { pc: 1, taken: false, target: 2 },
            7,
        ));
        assert_eq!(s.data_invariants(), 1);
        assert_eq!(s.control_invariants(), 1);
    }
}
