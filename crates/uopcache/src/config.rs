//! Micro-op cache geometry and tuning.

/// Geometry and tuning of one micro-op cache partition.
///
/// The paper's baseline is 48 sets × 8 ways × 6 micro-ops (2304 total);
/// SCC's best configuration splits that into a 24-set unoptimized and a
/// 24-set, 4-way optimized partition (appendix flags `--uopCacheNumSets=24
/// --specCacheNumSets=24 --specCacheNumWays=4`), with Figure 10 sweeping
/// 12/24/36-set splits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UopCacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Micro-ops per way (line).
    pub uops_per_line: usize,
    /// Maximum ways one 32-byte region may occupy (paper: 3, i.e. 18
    /// fused micro-ops).
    pub max_ways_per_region: usize,
    /// Hotness at which an unoptimized line triggers a compaction request.
    pub hotness_threshold: u32,
    /// Cycles between hotness decays (paper: 28 unoptimized, 3 optimized).
    pub decay_period: u64,
}

impl UopCacheConfig {
    /// The paper's baseline unpartitioned geometry: 48×8×6.
    pub fn baseline() -> UopCacheConfig {
        UopCacheConfig {
            sets: 48,
            ways: 8,
            uops_per_line: 6,
            max_ways_per_region: 3,
            hotness_threshold: 8,
            decay_period: 28,
        }
    }

    /// The SCC unoptimized partition at `sets` sets (8 ways × 6 uops).
    pub fn unopt_partition(sets: usize) -> UopCacheConfig {
        UopCacheConfig { sets, ..UopCacheConfig::baseline() }
    }

    /// The SCC optimized partition at `sets` sets (4 ways × 6 uops,
    /// 3-cycle decay).
    pub fn opt_partition(sets: usize) -> UopCacheConfig {
        UopCacheConfig {
            sets,
            ways: 4,
            uops_per_line: 6,
            max_ways_per_region: 3,
            hotness_threshold: 8,
            decay_period: 3,
        }
    }

    /// Total micro-op capacity.
    pub fn capacity_uops(&self) -> usize {
        self.sets * self.ways * self.uops_per_line
    }

    /// Maximum micro-ops cacheable for one region.
    pub fn region_capacity_uops(&self) -> usize {
        self.max_ways_per_region * self.uops_per_line
    }

    /// The set index for a region base address.
    pub fn set_of(&self, region: u64) -> usize {
        ((region / scc_isa::REGION_BYTES) % self.sets as u64) as usize
    }

    /// Checks the geometry, returning a description of the first problem
    /// found. The builder layer uses this to surface typed configuration
    /// errors instead of panicking.
    pub fn check(&self) -> Result<(), String> {
        if self.sets == 0 || self.ways == 0 || self.uops_per_line == 0 {
            return Err(format!(
                "degenerate geometry: {} sets x {} ways x {} uops/line",
                self.sets, self.ways, self.uops_per_line
            ));
        }
        if self.max_ways_per_region < 1 || self.max_ways_per_region > self.ways {
            return Err(format!(
                "region span must fit in a set: max_ways_per_region {} vs {} ways",
                self.max_ways_per_region, self.ways
            ));
        }
        Ok(())
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sets/ways/uops).
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_one() {
        let c = UopCacheConfig::baseline();
        assert_eq!(c.capacity_uops(), 2304);
        assert_eq!(c.region_capacity_uops(), 18);
        c.validate();
    }

    #[test]
    fn partition_splits() {
        assert_eq!(UopCacheConfig::unopt_partition(24).sets, 24);
        let o = UopCacheConfig::opt_partition(24);
        assert_eq!(o.ways, 4);
        assert_eq!(o.decay_period, 3);
        o.validate();
    }

    #[test]
    fn set_mapping_wraps() {
        let c = UopCacheConfig::baseline();
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(32), 1);
        assert_eq!(c.set_of(32 * 48), 0);
        assert_eq!(c.set_of(32 * 49), 1);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_sets_panics() {
        let mut c = UopCacheConfig::baseline();
        c.sets = 0;
        c.validate();
    }

    #[test]
    fn check_reports_problems_without_panicking() {
        assert!(UopCacheConfig::baseline().check().is_ok());
        let mut c = UopCacheConfig::baseline();
        c.ways = 0;
        assert!(c.check().unwrap_err().contains("degenerate"));
        let mut c = UopCacheConfig::baseline();
        c.max_ways_per_region = c.ways + 1;
        assert!(c.check().unwrap_err().contains("region span"));
    }
}
