//! Property-style tests: micro-op cache structural invariants under
//! arbitrary fill/lookup/evict sequences, driven by a deterministic
//! SplitMix64 generator (no registry dependencies).

use scc_isa::rand_prog::SplitMix64;
use scc_isa::{Op, Uop};
use scc_uopcache::{
    CompactedStream, Invariant, OptPartition, StreamUop, TaggedInvariant, UnoptPartition,
    UopCacheConfig,
};

fn uops(n: usize) -> Vec<Uop> {
    (0..n)
        .map(|i| {
            let mut u = Uop::new(Op::Nop);
            u.macro_addr = i as u64;
            u.macro_len = 1;
            u
        })
        .collect()
}

fn stream(region: u64, id: u64, n: usize, conf: u8) -> CompactedStream {
    CompactedStream {
        region,
        entry: region,
        uops: vec![StreamUop::plain(Uop::new(Op::Nop)); n],
        final_live_outs: vec![],
        final_live_out_cc: None,
        invariants: vec![TaggedInvariant::new(
            Invariant::Data { pc: region, slot: 0, value: 1 },
            conf,
        )],
        exit: region + 32,
        orig_len: n as u32 + 2,
        breakdown: Default::default(),
        stream_id: id,
    }
}

#[test]
fn unopt_partition_never_loses_track_of_residency() {
    let mut rng = SplitMix64::new(31);
    for _ in 0..16 {
        let n = 1 + rng.below(199) as usize;
        let mut p = UnoptPartition::new(UopCacheConfig {
            sets: 4,
            ways: 8,
            uops_per_line: 6,
            max_ways_per_region: 3,
            hotness_threshold: 4,
            decay_period: 28,
        });
        let mut now = 0u64;
        for _ in 0..n {
            let slot = rng.below(32);
            let len = 1 + rng.below(18) as usize;
            let lookup_first = rng.chance(1, 2);
            now += 1;
            let region = slot * 32;
            if lookup_first {
                // Lookups of resident regions must return their uops.
                if p.contains(region) {
                    let lk = p.lookup(region, now).expect("resident region hits");
                    assert!(!lk.uops.is_empty());
                }
            }
            let _ = p.fill(region, uops(len), now);
            // Residency is consistent between peek and contains.
            assert_eq!(p.contains(region), p.peek(region).is_some());
        }
        // Capacity: residents cannot exceed sets*ways single-way regions.
        assert!(p.resident_regions() <= 4 * 8);
    }
}

#[test]
fn unopt_hotness_is_monotone_in_lookups_between_decays() {
    for lookups in 1u64..40 {
        let mut p = UnoptPartition::new(UopCacheConfig::baseline());
        p.fill(0x40, uops(3), 0);
        let mut last = p.hotness(0x40);
        for t in 1..=lookups {
            p.lookup(0x40, t); // within one decay period
            let h = p.hotness(0x40);
            assert!(h >= last);
            last = h;
        }
    }
}

#[test]
fn opt_partition_respects_way_capacity() {
    let mut rng = SplitMix64::new(32);
    for _ in 0..32 {
        let n = 1 + rng.below(99) as usize;
        let cfg = UopCacheConfig::opt_partition(4); // 4 sets x 4 ways
        let mut p = OptPartition::new(cfg);
        for i in 0..n {
            let slot = rng.below(8);
            let len = 1 + rng.below(18) as usize;
            let conf = rng.below(16) as u8;
            let region = slot * 32;
            let _ = p.insert(stream(region, i as u64 + 1, len, conf), i as u64);
        }
        // Total ways used per set can never exceed the configured ways;
        // resident streams each need >= 1 way, so the count is bounded.
        assert!(p.resident_streams() <= 4 * 4);
    }
}

#[test]
fn opt_reward_penalize_keep_counters_bounded() {
    let mut rng = SplitMix64::new(33);
    for _ in 0..16 {
        let n = 1 + rng.below(99) as usize;
        let mut p = OptPartition::new(UopCacheConfig::opt_partition(4));
        p.insert(stream(0x40, 1, 3, 8), 0);
        for _ in 0..n {
            if rng.chance(1, 2) {
                p.reward(1, 0);
            } else {
                p.penalize(1, 0);
            }
            let c = p.peek(0x40)[0].invariants[0].confidence.get();
            assert!(c <= 15);
        }
    }
}

#[test]
fn phase_out_only_drops_below_threshold() {
    let mut rng = SplitMix64::new(34);
    for _ in 0..48 {
        let k = 1 + rng.below(7) as usize;
        let confs: Vec<u8> = (0..k).map(|_| rng.below(16) as u8).collect();
        let floor = rng.below(16) as u8;
        let mut p = OptPartition::new(UopCacheConfig::opt_partition(8));
        for (i, &c) in confs.iter().enumerate() {
            // Distinct entry PCs so streams co-host rather than replace.
            let mut s = stream(0x40, i as u64 + 1, 1, c);
            s.entry = 0x40 + i as u64;
            p.insert(s, i as u64);
        }
        let before = p.resident_streams();
        let dropped = p.phase_out(0x40, floor);
        assert_eq!(before - dropped, p.resident_streams());
        // Everything left meets the floor.
        for i in 0..confs.len() {
            for s in p.peek(0x40 + i as u64) {
                assert!(s.min_confidence() >= floor);
            }
        }
    }
}

#[test]
fn fused_pairs_increase_region_capacity() {
    // 24 micro-ops normally exceed the 18-slot (3-way) region budget, but
    // 12 fused pairs fit in 12 slots (2 ways).
    use scc_isa::{Op, Operand, Reg};
    let mut fused = Vec::new();
    for i in 0..12 {
        let mut ld = Uop::new(Op::Load);
        ld.dst = Some(Reg::int(1));
        ld.src1 = Operand::Reg(Reg::int(0));
        ld.macro_addr = i * 2;
        ld.macro_len = 1;
        ld.fused_with_next = true;
        let mut add = Uop::new(Op::Add);
        add.dst = Some(Reg::int(2));
        add.src1 = Operand::Reg(Reg::int(1));
        add.src2 = Operand::Imm(1);
        add.macro_addr = i * 2 + 1;
        add.macro_len = 1;
        fused.push(ld);
        fused.push(add);
    }
    let mut p = UnoptPartition::new(UopCacheConfig::baseline());
    assert!(p.fill(0x40, fused, 0), "24 uops as 12 fused slots must fit");
    // The same 24 micro-ops unfused are rejected.
    let unfused = uops(24);
    let mut p2 = UnoptPartition::new(UopCacheConfig::baseline());
    assert!(!p2.fill(0x40, unfused, 0), "24 unfused slots exceed 3 ways");
}
