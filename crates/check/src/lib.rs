//! Differential correctness harness for the SCC simulator.
//!
//! SCC's entire premise is that aggressive speculative rewriting of the
//! micro-op stream is *architecturally invisible*: every optimization
//! level, predictor choice, and partition split must produce exactly the
//! state the ISA's reference interpreter produces. This crate turns that
//! premise into a fuzzable property:
//!
//! 1. [`scc_isa::rand_prog`] generates seeded, always-terminating
//!    programs weighted toward the engine's riskiest paths (aliasing
//!    stores, indirect jumps, fused compare-and-branch, mask-boundary
//!    shifts, division edge operands).
//! 2. [`check_program`] runs one program through the whole
//!    [`config_matrix`] — the appendix's six optimization levels plus
//!    configuration ablations — and compares each run's final
//!    [`ArchSnapshot`] and its `program_uops` program-distance counter
//!    against the in-order [`Machine`] oracle.
//! 3. On a failure, [`minimize`](crate::minimize::minimize) shrinks the
//!    program while the divergence reproduces, and the `scc-check`
//!    binary writes the result to `check/repros/` as a deterministic
//!    regression test replayed by `tests/repros.rs`.
//!
//! The pipeline's internal invariant checkers (a `scc-pipeline` feature
//! this crate enables by default) run during fuzzing; their panics are
//! caught and reported as [`DivergenceKind::Panic`] findings with the
//! assertion message preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod minimize;
pub mod serialize;

use scc_isa::{ArchSnapshot, Machine, Program, NUM_INT_REGS};
use scc_pipeline::{Pipeline, PipelineConfig, RunOutcome};
use scc_predictors::{BranchPredictorKind, ValuePredictorKind};
use scc_sim::{OptLevel, SimOptions};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Default pipeline cycle budget per configuration. Generated programs
/// halt within tens of thousands of cycles; a run that reaches this
/// budget is a hang, reported as [`DivergenceKind::Outcome`].
pub const DEFAULT_MAX_CYCLES: u64 = 5_000_000;

/// Micro-op budget for the reference interpreter. Generated programs are
/// terminating by construction, so exhausting this means the *program*
/// (e.g. a hand-edited reproducer) is broken, not the pipeline.
pub const ORACLE_UOP_BUDGET: u64 = 20_000_000;

/// The configurations one program is checked under: the appendix's six
/// optimization levels (in order, so `matrix[0]` is the no-SCC baseline
/// that anchors the counter comparison), and with `ablations` the
/// full-SCC design re-checked under every configuration axis the
/// experiments sweep — value/branch predictor, partition split, constant
/// width, micro-fusion, and classic value-prediction forwarding.
pub fn config_matrix(ablations: bool) -> Vec<(String, PipelineConfig)> {
    let mut out: Vec<(String, PipelineConfig)> = OptLevel::all()
        .into_iter()
        .map(|l| (l.label().to_string(), SimOptions::new(l).to_pipeline_config()))
        .collect();
    if ablations {
        let full = |edit: fn(&mut SimOptions)| {
            let mut o = SimOptions::new(OptLevel::Full);
            edit(&mut o);
            o.to_pipeline_config()
        };
        out.push(("full+vpfwd".into(), full(|o| o.vp_forwarding = Some(15))));
        out.push(("full+h3vp".into(), full(|o| o.value_predictor = ValuePredictorKind::H3vp)));
        out.push((
            "full+bimodal".into(),
            full(|o| o.branch_predictor = BranchPredictorKind::Bimodal),
        ));
        out.push(("full+sets12".into(), full(|o| o.opt_partition_sets = 12)));
        out.push(("full+cw8".into(), full(|o| o.max_constant_width = Some(8))));
        let mut nofuse = SimOptions::new(OptLevel::Full).to_pipeline_config();
        nofuse.core.micro_fusion = false;
        out.push(("full+nofuse".into(), nofuse));
        let mut basevp = SimOptions::new(OptLevel::Baseline).to_pipeline_config();
        basevp.vp_forwarding = Some(15);
        out.push(("baseline+vpfwd".into(), basevp));
        // Event-driven fast-forward off: the full-SCC design stepped
        // per-cycle. Any divergence between this run and `full` means the
        // fast-forward jump skipped a cycle that wasn't actually a no-op.
        out.push(("full+percycle".into(), full(|o| o.fast_forward = false)));
    }
    out
}

/// How one configuration's run disagreed with the oracle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The run did not halt within the cycle budget.
    Outcome,
    /// The final architectural state differs from the interpreter's.
    Snapshot,
    /// `program_uops` differs from the reference configuration's —
    /// program distance is documented as invariant across levels.
    Counter,
    /// The pipeline panicked (an internal invariant checker fired).
    Panic,
}

/// One configuration's disagreement with the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Label from [`config_matrix`].
    pub config: String,
    /// Classification.
    pub kind: DivergenceKind,
    /// Human-readable specifics (first differing register, assertion
    /// message, ...).
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {}: {}", self.kind, self.config, self.detail)
    }
}

/// Runs the reference interpreter to completion.
///
/// Returns the final architectural state and the number of micro-ops
/// executed, or a description of why the oracle could not finish (which
/// disqualifies the *program*, not the pipeline).
pub fn run_oracle(p: &Program, max_uops: u64) -> Result<(ArchSnapshot, u64), String> {
    let mut m = Machine::new(p);
    match m.run(max_uops) {
        Ok(r) if r.halted => Ok((m.snapshot(), r.uops)),
        Ok(r) => Err(format!("oracle stopped after {} uops without halting", r.uops)),
        Err(e) => Err(format!("oracle failed: {e:?}")),
    }
}

/// Runs one pipeline configuration, converting panics (the in-pipeline
/// invariant checkers) into errors carrying the assertion message.
fn run_config(
    p: &Program,
    cfg: &PipelineConfig,
    max_cycles: u64,
) -> Result<(RunOutcome, ArchSnapshot, u64), String> {
    panic::catch_unwind(AssertUnwindSafe(|| {
        let mut pipe = Pipeline::new(p, cfg.clone());
        let res = pipe.run(max_cycles);
        (res.outcome, res.snapshot, res.stats.program_uops)
    }))
    .map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Checks one program under every configuration in `configs`.
///
/// Returns the list of divergences (empty means every configuration
/// matched the oracle exactly), or `Err` when the oracle itself cannot
/// run the program — the caller's signal that the program is invalid as
/// a test case (minimization uses this to reject mutations that break
/// termination).
///
/// The first configuration that halts cleanly anchors the
/// `program_uops` cross-configuration comparison, so callers should put
/// a known-good reference (conventionally the plain baseline) first.
pub fn check_program(
    p: &Program,
    configs: &[(String, PipelineConfig)],
    max_cycles: u64,
) -> Result<Vec<Divergence>, String> {
    let (oracle, _oracle_uops) = run_oracle(p, ORACLE_UOP_BUDGET)?;
    let mut divs = Vec::new();
    let mut reference: Option<(&str, u64)> = None;
    for (name, cfg) in configs {
        match run_config(p, cfg, max_cycles) {
            Err(msg) => divs.push(Divergence {
                config: name.clone(),
                kind: DivergenceKind::Panic,
                detail: msg,
            }),
            Ok((outcome, snap, program_uops)) => {
                if outcome != RunOutcome::Halted {
                    divs.push(Divergence {
                        config: name.clone(),
                        kind: DivergenceKind::Outcome,
                        detail: format!("did not halt within {max_cycles} cycles"),
                    });
                    continue;
                }
                if let Some(detail) = snapshot_diff(&oracle, &snap) {
                    divs.push(Divergence {
                        config: name.clone(),
                        kind: DivergenceKind::Snapshot,
                        detail,
                    });
                }
                match reference {
                    None => reference = Some((name, program_uops)),
                    Some((ref_name, ref_uops)) if program_uops != ref_uops => {
                        divs.push(Divergence {
                            config: name.clone(),
                            kind: DivergenceKind::Counter,
                            detail: format!(
                                "program_uops {program_uops} != {ref_uops} ({ref_name})"
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    Ok(divs)
}

/// First difference between the oracle's snapshot and a pipeline's, or
/// `None` when they are identical.
pub fn snapshot_diff(oracle: &ArchSnapshot, got: &ArchSnapshot) -> Option<String> {
    if oracle == got {
        return None;
    }
    for (i, (o, g)) in oracle.regs.iter().zip(got.regs.iter()).enumerate() {
        if o != g {
            let name = if i < NUM_INT_REGS {
                format!("r{i}")
            } else {
                format!("f{}", i - NUM_INT_REGS)
            };
            return Some(format!("reg {name}: oracle {o}, got {g}"));
        }
    }
    if oracle.cc != got.cc {
        return Some(format!("cc: oracle {:?}, got {:?}", oracle.cc, got.cc));
    }
    let om: BTreeMap<u64, i64> = oracle.mem.iter().copied().collect();
    let gm: BTreeMap<u64, i64> = got.mem.iter().copied().collect();
    for (addr, o) in &om {
        match gm.get(addr) {
            Some(g) if g != o => return Some(format!("mem[{addr:#x}]: oracle {o}, got {g}")),
            None if *o != 0 => return Some(format!("mem[{addr:#x}]: oracle {o}, got absent")),
            _ => {}
        }
    }
    for (addr, g) in &gm {
        if !om.contains_key(addr) && *g != 0 {
            return Some(format!("mem[{addr:#x}]: oracle absent, got {g}"));
        }
    }
    Some("snapshots differ only in zero-valued memory representation".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::rand_prog::{random_program, RandProgConfig};

    #[test]
    fn matrix_labels_are_unique_and_baseline_leads() {
        let m = config_matrix(true);
        assert_eq!(m[0].0, "baseline");
        assert!(!m[0].1.frontend.has_scc());
        assert_eq!(m.len(), 14);
        let names: std::collections::HashSet<&str> =
            m.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names.len(), m.len(), "duplicate config labels");
    }

    #[test]
    fn fuzz_smoke_clean_on_first_seeds() {
        // A miniature of the release fuzz run: a few seeds, all six
        // levels. Debug builds also exercise the in-pipeline checkers.
        let matrix = config_matrix(false);
        let cfg = RandProgConfig::default();
        for seed in 0..4u64 {
            let p = random_program(seed, &cfg);
            let divs = check_program(&p, &matrix, DEFAULT_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(divs.is_empty(), "seed {seed}: {divs:?}");
        }
    }

    #[test]
    fn snapshot_diff_pinpoints_first_difference() {
        let a = ArchSnapshot { regs: [0; scc_isa::NUM_REGS], cc: Default::default(), mem: vec![] };
        let mut b = a.clone();
        assert_eq!(snapshot_diff(&a, &b), None);
        b.regs[5] = 7;
        assert_eq!(snapshot_diff(&a, &b).unwrap(), "reg r5: oracle 0, got 7");
        let mut c = a.clone();
        c.mem.push((0x40, 9));
        assert_eq!(snapshot_diff(&c, &a).unwrap(), "mem[0x40]: oracle 9, got absent");
    }

    #[test]
    fn oracle_rejects_non_terminating_programs() {
        use scc_isa::ProgramBuilder;
        let mut b = ProgramBuilder::new(0x100);
        let top = b.here();
        b.jmp(top);
        b.halt();
        let p = b.build();
        assert!(run_oracle(&p, 10_000).is_err());
    }
}
