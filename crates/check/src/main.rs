//! `scc-check`: the differential correctness harness CLI.
//!
//! ```text
//! scc-check fuzz [--seeds N] [--start S] [--workers W] [--profile wide|narrow]
//!                [--guest] [--no-ablations] [--no-minimize] [--max-cycles N]
//!                [--out DIR]
//! scc-check repro FILE...
//! scc-check minimize FILE
//! ```

use scc_check::serialize::{dump_program, parse_program};
use scc_check::{check_program, config_matrix, minimize::minimize, Divergence, DEFAULT_MAX_CYCLES};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::Program;
use scc_pipeline::PipelineConfig;
use scc_sim::parallel_map;
use std::path::{Path, PathBuf};

const USAGE: &str = "\
scc-check: fuzz every SCC optimization level against the reference interpreter

USAGE:
  scc-check fuzz [--seeds N] [--start S] [--workers W] [--profile wide|narrow]
                 [--guest] [--no-ablations] [--no-minimize] [--max-cycles N]
                 [--out DIR]
  scc-check repro FILE...
  scc-check minimize FILE

COMMANDS:
  fuzz      Generate seeded random programs and check each one under the
            six optimization levels (plus configuration ablations unless
            --no-ablations). Failures are minimized and written to
            --out (default check/repros) as .sccprog reproducers.
            With --guest, seeds generate guest-language source instead:
            each program is compiled at O0/O1/O2, the three binaries'
            final guest-visible memory must agree (a compiler diff is a
            front-end bug), and every binary is checked under the full
            config matrix. Guest failures are written as .sccl source
            reproducers, replayable from the seed alone.
  repro     Re-check committed .sccprog reproducers; exit 1 on any
            divergence.
  minimize  Minimize a diverging .sccprog further; prints the result.
";

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        Some("minimize") => cmd_minimize(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            if args.is_empty() {
                2
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            2
        }
    }
}

struct FuzzArgs {
    seeds: u64,
    start: u64,
    workers: usize,
    profile: String,
    guest: bool,
    ablations: bool,
    minimize: bool,
    max_cycles: u64,
    out: PathBuf,
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut fa = FuzzArgs {
        seeds: 1000,
        start: 0,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        profile: "wide".to_string(),
        guest: false,
        ablations: true,
        minimize: true,
        max_cycles: DEFAULT_MAX_CYCLES,
        out: PathBuf::from("check/repros"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{a} needs a value"));
        match a.as_str() {
            "--seeds" => fa.seeds = value()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--start" => fa.start = value()?.parse().map_err(|e| format!("--start: {e}"))?,
            "--workers" => {
                fa.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--profile" => {
                fa.profile = value()?.clone();
                if fa.profile != "wide" && fa.profile != "narrow" {
                    return Err(format!("--profile must be wide or narrow, got {}", fa.profile));
                }
            }
            "--guest" => fa.guest = true,
            "--no-ablations" => fa.ablations = false,
            "--no-minimize" => fa.minimize = false,
            "--max-cycles" => {
                fa.max_cycles = value()?.parse().map_err(|e| format!("--max-cycles: {e}"))?
            }
            "--out" => fa.out = PathBuf::from(value()?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(fa)
}

/// One seed's verdict, computed on a worker thread.
struct SeedFailure {
    seed: u64,
    divergences: Vec<Divergence>,
    /// Serialized minimized reproducer (header comments included).
    reproducer: String,
    /// `sccprog` for macro-op reproducers, `sccl` for guest source.
    ext: &'static str,
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let fa = match parse_fuzz_args(args) {
        Ok(fa) => fa,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return 2;
        }
    };
    let gen_cfg = match fa.profile.as_str() {
        "narrow" => RandProgConfig::narrow(),
        _ => RandProgConfig::default(),
    };
    let matrix = config_matrix(fa.ablations);
    println!(
        "fuzzing {} {} seeds ({}..{}) x {} configs, profile {}, {} workers",
        fa.seeds,
        if fa.guest { "guest" } else { "macro-op" },
        fa.start,
        fa.start + fa.seeds,
        matrix.len(),
        fa.profile,
        fa.workers
    );
    // The in-pipeline invariant checkers abort via panic; during fuzzing
    // those are expected findings, so silence the default backtrace spew
    // (the message itself is preserved through catch_unwind).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let seeds: Vec<u64> = (fa.start..fa.start + fa.seeds).collect();
    let results = parallel_map(fa.workers, &seeds, |&seed| {
        if fa.guest {
            guest_fuzz_one(seed, &matrix, fa.max_cycles)
        } else {
            fuzz_one(seed, &fa.profile, &gen_cfg, &matrix, fa.max_cycles, fa.minimize)
        }
    });
    std::panic::set_hook(prev_hook);

    let failures: Vec<&SeedFailure> = results.iter().flatten().collect();
    if failures.is_empty() {
        println!(
            "OK: {} programs x {} configs, zero divergences",
            fa.seeds,
            matrix.len()
        );
        return 0;
    }
    if let Err(e) = std::fs::create_dir_all(&fa.out) {
        eprintln!("cannot create {}: {e}", fa.out.display());
        return 2;
    }
    for f in &failures {
        let profile = if fa.guest { "guest" } else { fa.profile.as_str() };
        let path = fa.out.join(format!("seed-{:05}-{profile}.{}", f.seed, f.ext));
        println!("FAIL seed {} -> {}", f.seed, path.display());
        for d in &f.divergences {
            println!("  {d}");
        }
        if let Err(e) = std::fs::write(&path, &f.reproducer) {
            eprintln!("  cannot write {}: {e}", path.display());
        }
    }
    println!(
        "{} of {} seeds diverged; reproducers in {}",
        failures.len(),
        fa.seeds,
        fa.out.display()
    );
    1
}

fn fuzz_one(
    seed: u64,
    profile: &str,
    gen_cfg: &RandProgConfig,
    matrix: &[(String, PipelineConfig)],
    max_cycles: u64,
    do_minimize: bool,
) -> Option<SeedFailure> {
    let p = random_program(seed, gen_cfg);
    let divergences = match check_program(&p, matrix, max_cycles) {
        Ok(d) if d.is_empty() => return None,
        Ok(d) => d,
        Err(e) => vec![Divergence {
            config: "oracle".to_string(),
            kind: scc_check::DivergenceKind::Outcome,
            detail: e,
        }],
    };
    let minimized = if do_minimize && divergences.iter().all(|d| d.config != "oracle") {
        let subset = failing_subset(matrix, &divergences);
        let pred = |q: &Program| {
            check_program(q, &subset, max_cycles).map(|d| !d.is_empty()).unwrap_or(false)
        };
        minimize(&p, pred, 6)
    } else {
        p.clone()
    };
    let mut text = String::new();
    text.push_str("# scc-check reproducer\n");
    text.push_str(&format!("# seed: {seed}  profile: {profile}\n"));
    for d in &divergences {
        text.push_str(&format!("# divergence: {d}\n"));
    }
    text.push_str(&dump_program(&minimized));
    Some(SeedFailure { seed, divergences, reproducer: text, ext: "sccprog" })
}

/// Differentially checks one generated guest program: the three opt
/// levels must agree on guest-visible memory under the oracle, and each
/// compiled binary must match the oracle under every pipeline
/// configuration. The seed alone reproduces everything, so the `.sccl`
/// reproducer is the generated source, not a minimized binary.
fn guest_fuzz_one(
    seed: u64,
    matrix: &[(String, PipelineConfig)],
    max_cycles: u64,
) -> Option<SeedFailure> {
    let src = scc_lang::gen::generate(seed);
    let mut divergences = Vec::new();
    let mut compiled = Vec::new();
    for opt in scc_lang::Opt::ALL {
        match scc_lang::compile(&src, &scc_lang::Options { opt, iters: 1 }) {
            Ok(c) => compiled.push((opt, c)),
            Err(e) => divergences.push(Divergence {
                config: format!("compile@{}", opt.name()),
                kind: scc_check::DivergenceKind::Outcome,
                detail: e.to_string(),
            }),
        }
    }

    // Guest-visible memory must be identical across opt levels: read
    // every declared variable and array element back out of the oracle's
    // memory after each binary halts.
    let mut reference: Option<(scc_lang::Opt, GuestMem)> = None;
    for (opt, c) in &compiled {
        let mut m = scc_isa::Machine::new(&c.program);
        match m.run(scc_check::ORACLE_UOP_BUDGET) {
            Ok(r) if r.halted => {}
            Ok(r) => {
                divergences.push(Divergence {
                    config: format!("oracle@{}", opt.name()),
                    kind: scc_check::DivergenceKind::Outcome,
                    detail: format!("stopped after {} uops without halting", r.uops),
                });
                continue;
            }
            Err(e) => {
                divergences.push(Divergence {
                    config: format!("oracle@{}", opt.name()),
                    kind: scc_check::DivergenceKind::Outcome,
                    detail: format!("oracle failed: {e:?}"),
                });
                continue;
            }
        }
        let mem: GuestMem = c
            .symbols
            .iter()
            .map(|s| {
                let vals = (0..s.len).map(|i| m.mem().read(s.addr + 8 * i as u64)).collect();
                (s.name.clone(), vals)
            })
            .collect();
        match &reference {
            None => reference = Some((*opt, mem)),
            Some((ref_opt, ref_mem)) => {
                if let Some(d) = guest_mem_diff(ref_mem, &mem) {
                    divergences.push(Divergence {
                        config: format!("{}-vs-{}", ref_opt.name(), opt.name()),
                        kind: scc_check::DivergenceKind::Snapshot,
                        detail: d,
                    });
                }
            }
        }
    }

    // Full pipeline differential per binary — an optimizer-shaped
    // program must still match the oracle under every configuration.
    for (opt, c) in &compiled {
        match check_program(&c.program, matrix, max_cycles) {
            Ok(divs) => divergences.extend(divs.into_iter().map(|mut d| {
                d.config = format!("{}@{}", d.config, opt.name());
                d
            })),
            Err(e) => divergences.push(Divergence {
                config: format!("oracle@{}", opt.name()),
                kind: scc_check::DivergenceKind::Outcome,
                detail: e,
            }),
        }
    }

    if divergences.is_empty() {
        return None;
    }
    let mut text = String::new();
    text.push_str("# scc-check guest reproducer\n");
    text.push_str(&format!("# seed: {seed}\n"));
    for d in &divergences {
        text.push_str(&format!("# divergence: {d}\n"));
    }
    text.push_str(&src);
    Some(SeedFailure { seed, divergences, reproducer: text, ext: "sccl" })
}

/// Final guest-visible state: `(variable, element values)` in
/// declaration order, scalars as single-element vectors.
type GuestMem = Vec<(String, Vec<i64>)>;

/// First guest variable whose final value differs between two compiled
/// binaries, or `None` when the guest-visible state agrees.
fn guest_mem_diff(a: &GuestMem, b: &GuestMem) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("symbol count {} != {}", a.len(), b.len()));
    }
    for ((an, av), (bn, bv)) in a.iter().zip(b) {
        if an != bn {
            return Some(format!("symbol order differs: `{an}` vs `{bn}`"));
        }
        for (i, (x, y)) in av.iter().zip(bv).enumerate() {
            if x != y {
                return Some(format!("{an}[{i}]: {x} vs {y}"));
            }
        }
    }
    None
}

/// The reference configuration plus every configuration that diverged —
/// the cheapest matrix that can still reproduce the failure.
fn failing_subset(
    matrix: &[(String, PipelineConfig)],
    divs: &[Divergence],
) -> Vec<(String, PipelineConfig)> {
    matrix
        .iter()
        .enumerate()
        .filter(|(i, (name, _))| *i == 0 || divs.iter().any(|d| &d.config == name))
        .map(|(_, c)| c.clone())
        .collect()
}

fn load_program(path: &Path) -> Result<Program, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_program(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_repro(args: &[String]) -> i32 {
    if args.is_empty() {
        eprintln!("repro needs at least one .sccprog file\n\n{USAGE}");
        return 2;
    }
    let matrix = config_matrix(true);
    let mut bad = 0usize;
    for a in args {
        let path = Path::new(a);
        let p = match load_program(path) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                bad += 1;
                continue;
            }
        };
        match check_program(&p, &matrix, DEFAULT_MAX_CYCLES) {
            Ok(divs) if divs.is_empty() => println!("OK   {}", path.display()),
            Ok(divs) => {
                println!("FAIL {}", path.display());
                for d in &divs {
                    println!("  {d}");
                }
                bad += 1;
            }
            Err(e) => {
                println!("FAIL {} (oracle: {e})", path.display());
                bad += 1;
            }
        }
    }
    if bad == 0 {
        0
    } else {
        1
    }
}

fn cmd_minimize(args: &[String]) -> i32 {
    let [file] = args else {
        eprintln!("minimize needs exactly one .sccprog file\n\n{USAGE}");
        return 2;
    };
    let p = match load_program(Path::new(file)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let matrix = config_matrix(true);
    let divs = match check_program(&p, &matrix, DEFAULT_MAX_CYCLES) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("oracle cannot run this program: {e}");
            return 2;
        }
    };
    if divs.is_empty() {
        eprintln!("program does not diverge; nothing to minimize");
        return 1;
    }
    let subset = failing_subset(&matrix, &divs);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let min = minimize(
        &p,
        |q| {
            check_program(q, &subset, DEFAULT_MAX_CYCLES)
                .map(|d| !d.is_empty())
                .unwrap_or(false)
        },
        6,
    );
    std::panic::set_hook(prev_hook);
    for d in &divs {
        println!("# divergence: {d}");
    }
    print!("{}", dump_program(&min));
    0
}
