//! The `.sccprog` reproducer format: a line-oriented text serialization
//! of [`Program`]s.
//!
//! Failures the fuzzer minimizes are committed under `check/repros/` in
//! this format and replayed as deterministic regression tests, so the
//! format favors diff-friendliness and hand-editability over density:
//! one line per data word and per micro-op, every field explicit.
//!
//! ```text
//! sccprog v1
//! entry 0x1000
//! data 0x100000 -42
//! inst 0x1000 4 simple
//!   movi r0 #7 - 0 - - 0 0
//! ```
//!
//! Micro-op lines carry nine fields: `op dst src1 src2 offset target
//! cond writes_cc fused_with_next`. Registers print as `r<n>`/`f<n>`,
//! immediates as `#<value>`, and absent fields as `-`. `self_loop` and
//! `slot` are not serialized — [`MacroInst::new`] re-derives them, which
//! keeps a hand-edited reproducer impossible to de-synchronize.

use scc_isa::{Addr, Cond, MacroInst, MacroKind, Op, Operand, Program, Reg, Uop};

/// Serializes a program to `.sccprog` text.
pub fn dump_program(p: &Program) -> String {
    let mut out = String::new();
    out.push_str("sccprog v1\n");
    out.push_str(&format!("entry {:#x}\n", p.entry()));
    for &(addr, value) in p.init_data() {
        out.push_str(&format!("data {addr:#x} {value}\n"));
    }
    for m in p.insts() {
        let kind = match m.kind {
            MacroKind::Simple => "simple",
            MacroKind::Fused => "fused",
            MacroKind::StringOp => "stringop",
        };
        out.push_str(&format!("inst {:#x} {} {kind}\n", m.addr, m.len));
        for u in &m.uops {
            out.push_str(&format!(
                "  {} {} {} {} {} {} {} {} {}\n",
                u.op,
                dump_reg_opt(u.dst),
                dump_operand(u.src1),
                dump_operand(u.src2),
                u.offset,
                match u.target {
                    Some(t) => format!("{t:#x}"),
                    None => "-".to_string(),
                },
                match u.cond {
                    Some(c) => c.to_string(),
                    None => "-".to_string(),
                },
                u.writes_cc as u8,
                u.fused_with_next as u8,
            ));
        }
    }
    out
}

/// Parses `.sccprog` text back into a validated [`Program`].
///
/// Lines starting with `#` and blank lines are ignored, so reproducers
/// can carry a comment header describing the seed and the divergence.
pub fn parse_program(text: &str) -> Result<Program, String> {
    let mut entry: Option<Addr> = None;
    let mut data: Vec<(u64, i64)> = Vec::new();
    let mut insts: Vec<MacroInst> = Vec::new();
    // (addr, len, kind, uops) of the instruction being collected.
    let mut open: Option<(Addr, u8, MacroKind, Vec<Uop>)> = None;
    let mut saw_magic = false;

    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("line {}: {msg}", i + 1);
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        if !saw_magic {
            if line.trim() != "sccprog v1" {
                return Err(at(format!("expected `sccprog v1` header, got `{line}`")));
            }
            saw_magic = true;
            continue;
        }
        if line.starts_with("  ") {
            let Some((_, _, _, uops)) = open.as_mut() else {
                return Err(at("micro-op line outside an `inst` block".to_string()));
            };
            uops.push(parse_uop_line(line.trim()).map_err(at)?);
            continue;
        }
        // A non-indented line closes any open instruction.
        if let Some((addr, len, kind, uops)) = open.take() {
            if uops.is_empty() {
                return Err(at(format!("instruction {addr:#x} has no micro-ops")));
            }
            insts.push(MacroInst::new(addr, len, kind, uops));
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("entry") => {
                let a = tok.next().ok_or_else(|| at("entry needs an address".into()))?;
                entry = Some(parse_addr(a).map_err(at)?);
            }
            Some("data") => {
                let a = tok.next().ok_or_else(|| at("data needs an address".into()))?;
                let v = tok.next().ok_or_else(|| at("data needs a value".into()))?;
                let value: i64 =
                    v.parse().map_err(|_| at(format!("bad data value `{v}`")))?;
                data.push((parse_addr(a).map_err(at)?, value));
            }
            Some("inst") => {
                let a = tok.next().ok_or_else(|| at("inst needs an address".into()))?;
                let l = tok.next().ok_or_else(|| at("inst needs a length".into()))?;
                let k = tok.next().ok_or_else(|| at("inst needs a kind".into()))?;
                let len: u8 = l.parse().map_err(|_| at(format!("bad length `{l}`")))?;
                let kind = match k {
                    "simple" => MacroKind::Simple,
                    "fused" => MacroKind::Fused,
                    "stringop" => MacroKind::StringOp,
                    other => return Err(at(format!("unknown macro kind `{other}`"))),
                };
                open = Some((parse_addr(a).map_err(at)?, len, kind, Vec::new()));
            }
            Some(other) => return Err(at(format!("unknown directive `{other}`"))),
            None => unreachable!("blank lines are skipped above"),
        }
    }
    if let Some((addr, len, kind, uops)) = open.take() {
        if uops.is_empty() {
            return Err(format!("instruction {addr:#x} has no micro-ops"));
        }
        insts.push(MacroInst::new(addr, len, kind, uops));
    }
    let entry = entry.ok_or_else(|| "missing `entry` line".to_string())?;
    Program::new(insts, entry, data).map_err(|e| format!("invalid program: {e:?}"))
}

fn parse_uop_line(line: &str) -> Result<Uop, String> {
    let tok: Vec<&str> = line.split_whitespace().collect();
    if tok.len() != 9 {
        return Err(format!("micro-op line needs 9 fields, got {}: `{line}`", tok.len()));
    }
    let mut u = Uop::new(parse_op(tok[0])?);
    u.dst = parse_reg_opt(tok[1])?;
    u.src1 = parse_operand(tok[2])?;
    u.src2 = parse_operand(tok[3])?;
    u.offset = tok[4].parse().map_err(|_| format!("bad offset `{}`", tok[4]))?;
    u.target = match tok[5] {
        "-" => None,
        t => Some(parse_addr(t)?),
    };
    u.cond = match tok[6] {
        "-" => None,
        c => Some(parse_cond(c)?),
    };
    u.writes_cc = parse_bool(tok[7])?;
    u.fused_with_next = parse_bool(tok[8])?;
    Ok(u)
}

fn parse_addr(s: &str) -> Result<Addr, String> {
    let body = s.strip_prefix("0x").ok_or_else(|| format!("address `{s}` must be 0x-hex"))?;
    Addr::from_str_radix(body, 16).map_err(|_| format!("bad address `{s}`"))
}

fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag `{other}` (want 0 or 1)")),
    }
}

fn dump_reg(r: Reg) -> String {
    if r.is_int() {
        format!("r{}", r.index())
    } else {
        format!("f{}", r.index() - scc_isa::NUM_INT_REGS)
    }
}

fn dump_reg_opt(r: Option<Reg>) -> String {
    r.map_or_else(|| "-".to_string(), dump_reg)
}

fn dump_operand(o: Operand) -> String {
    match o {
        Operand::None => "-".to_string(),
        Operand::Reg(r) => dump_reg(r),
        Operand::Imm(v) => format!("#{v}"),
    }
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    let (ctor, body): (fn(u8) -> Reg, &str) = if let Some(b) = s.strip_prefix('r') {
        (Reg::int, b)
    } else if let Some(b) = s.strip_prefix('f') {
        (Reg::fp, b)
    } else {
        return Err(format!("bad register `{s}`"));
    };
    let n: u8 = body.parse().map_err(|_| format!("bad register `{s}`"))?;
    if n as usize >= scc_isa::NUM_INT_REGS {
        return Err(format!("register index out of range `{s}`"));
    }
    Ok(ctor(n))
}

fn parse_reg_opt(s: &str) -> Result<Option<Reg>, String> {
    if s == "-" {
        Ok(None)
    } else {
        parse_reg(s).map(Some)
    }
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    if s == "-" {
        return Ok(Operand::None);
    }
    if let Some(body) = s.strip_prefix('#') {
        let v: i64 = body.parse().map_err(|_| format!("bad immediate `{s}`"))?;
        return Ok(Operand::Imm(v));
    }
    parse_reg(s).map(Operand::Reg)
}

fn parse_op(s: &str) -> Result<Op, String> {
    Ok(match s {
        "nop" => Op::Nop,
        "halt" => Op::Halt,
        "movi" => Op::MovImm,
        "mov" => Op::Mov,
        "add" => Op::Add,
        "sub" => Op::Sub,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "sar" => Op::Sar,
        "not" => Op::Not,
        "neg" => Op::Neg,
        "mul" => Op::Mul,
        "div" => Op::Div,
        "rem" => Op::Rem,
        "cmp" => Op::Cmp,
        "test" => Op::Test,
        "setcc" => Op::SetCc,
        "ld" => Op::Load,
        "st" => Op::Store,
        "fadd" => Op::FpAdd,
        "fsub" => Op::FpSub,
        "fmul" => Op::FpMul,
        "fdiv" => Op::FpDiv,
        "fmov" => Op::FpMov,
        "simd" => Op::Simd,
        "jmp" => Op::Jmp,
        "jmpi" => Op::JmpInd,
        "brcc" => Op::BrCc,
        "cmpbr" => Op::CmpBr,
        "call" => Op::Call,
        "ret" => Op::Ret,
        other => return Err(format!("unknown op `{other}`")),
    })
}

fn parse_cond(s: &str) -> Result<Cond, String> {
    for c in Cond::all() {
        if c.to_string() == s {
            return Ok(c);
        }
    }
    Err(format!("unknown condition `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::rand_prog::{random_program, RandProgConfig};

    #[test]
    fn roundtrips_random_programs_exactly() {
        let cfg = RandProgConfig::default();
        for seed in 0..40u64 {
            let p = random_program(seed, &cfg);
            let text = dump_program(&p);
            let q = parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{text}"));
            assert_eq!(p.entry(), q.entry(), "seed {seed}");
            assert_eq!(p.init_data(), q.init_data(), "seed {seed}");
            assert_eq!(p.insts(), q.insts(), "seed {seed}");
            // And a second hop is bit-identical text.
            assert_eq!(text, dump_program(&q), "seed {seed}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# scc-check reproducer\n# seed: 7\n\nsccprog v1\nentry 0x10\n\
                    inst 0x10 1 simple\n  halt - - - 0 - - 0 0\n";
        let p = parse_program(text).unwrap();
        assert_eq!(p.entry(), 0x10);
        assert_eq!(p.insts().len(), 1);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let text = "sccprog v1\nentry 0x10\nbogus 1 2\n";
        let err = parse_program(text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("bogus"), "{err}");
        let text = "sccprog v1\nentry 0x10\ninst 0x10 1 simple\n  frobnicate - - - 0 - - 0 0\n";
        let err = parse_program(text).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");
    }

    #[test]
    fn validation_still_applies_after_parse() {
        // A dangling branch target must be rejected by Program::new.
        let text = "sccprog v1\nentry 0x10\ninst 0x10 2 simple\n  jmp - - - 0 0x999 - 0 0\n";
        let err = parse_program(text).unwrap_err();
        assert!(err.contains("invalid program"), "{err}");
    }
}
