//! Failure minimization: shrink a diverging program while the
//! divergence keeps reproducing.
//!
//! Programs are position-rigid — [`Program::new`] validates that every
//! branch target starts an instruction, and region membership is
//! computed from byte addresses — so the minimizer never moves or
//! deletes instructions. Instead it *neutralizes* them: an instruction
//! is replaced by a single-`nop` expansion with the same address and
//! byte length, which preserves the address map (and therefore every
//! branch target) while emptying the semantics. Passes run
//! delta-debugging style, halving chunk sizes, then drop initial data
//! words and simplify surviving operands, looping to a fixpoint.
//!
//! The interestingness predicate is supplied by the caller and is
//! expected to (a) return `false` for programs the oracle cannot finish
//! — mutations must not trade a miscompaction for a hang — and (b)
//! return `true` only when the original divergence still shows. The
//! `scc-check` binary builds it from [`crate::check_program`] over the
//! reference configuration plus the configurations that failed.

use scc_isa::{MacroInst, MacroKind, Op, Operand, Program, Uop};

/// The neutral replacement: one `nop`, same address and byte length.
fn neutralized(m: &MacroInst) -> MacroInst {
    MacroInst::new(m.addr, m.len, MacroKind::Simple, vec![Uop::new(Op::Nop)])
}

fn is_neutral(m: &MacroInst) -> bool {
    m.uops.len() == 1 && m.uops[0].op == Op::Nop
}

fn contains_halt(m: &MacroInst) -> bool {
    m.uops.iter().any(|u| u.op == Op::Halt)
}

/// Rebuilds a program from parts; `None` when validation rejects it
/// (cannot happen for neutralization, but operand edits go through the
/// same path).
fn rebuild(insts: Vec<MacroInst>, template: &Program) -> Option<Program> {
    Program::new(insts, template.entry(), template.init_data().to_vec()).ok()
}

/// Minimizes `p` while `interesting` holds, returning the smallest
/// variant found. `interesting(p)` must be `true` on entry — otherwise
/// the input is returned unchanged.
pub fn minimize<F>(p: &Program, interesting: F, max_rounds: usize) -> Program
where
    F: Fn(&Program) -> bool,
{
    if !interesting(p) {
        return p.clone();
    }
    let mut cur = p.clone();
    for _ in 0..max_rounds.max(1) {
        let mut changed = false;
        changed |= neutralize_pass(&mut cur, &interesting);
        changed |= drop_data_pass(&mut cur, &interesting);
        changed |= simplify_operands_pass(&mut cur, &interesting);
        if !changed {
            break;
        }
    }
    cur
}

/// Delta-debugging over instructions: neutralize whole chunks, halving
/// the chunk size down to single instructions.
fn neutralize_pass<F: Fn(&Program) -> bool>(cur: &mut Program, interesting: &F) -> bool {
    let mut changed = false;
    let mut size = cur.insts().len();
    while size >= 1 {
        let candidates: Vec<usize> = cur
            .insts()
            .iter()
            .enumerate()
            .filter(|(_, m)| !is_neutral(m) && !contains_halt(m))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            break;
        }
        for chunk in candidates.chunks(size) {
            let mut insts = cur.insts().to_vec();
            for &i in chunk {
                insts[i] = neutralized(&insts[i]);
            }
            let Some(candidate) = rebuild(insts, cur) else { continue };
            if interesting(&candidate) {
                *cur = candidate;
                changed = true;
            }
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    changed
}

/// Drops initial data words (chunked, then singly): cells the failure
/// does not depend on default to zero.
fn drop_data_pass<F: Fn(&Program) -> bool>(cur: &mut Program, interesting: &F) -> bool {
    let mut changed = false;
    let mut size = cur.init_data().len();
    while size >= 1 {
        let n = cur.init_data().len();
        if n == 0 {
            break;
        }
        let indices: Vec<usize> = (0..n).collect();
        for chunk in indices.chunks(size) {
            let data: Vec<(u64, i64)> = cur
                .init_data()
                .iter()
                .enumerate()
                .filter(|(i, _)| !chunk.contains(i))
                .map(|(_, &w)| w)
                .collect();
            if data.len() == cur.init_data().len() {
                continue;
            }
            let Ok(candidate) = Program::new(cur.insts().to_vec(), cur.entry(), data) else {
                continue;
            };
            if interesting(&candidate) {
                *cur = candidate;
                changed = true;
                break; // indices are stale after a removal; redo this size
            }
        }
        if size == 1 {
            break;
        }
        size /= 2;
    }
    changed
}

/// Per-operand simplification on the surviving instructions: zero
/// nonzero immediates and memory displacements, and demote register
/// sources to `#0`. Each accepted edit strictly simplifies the program
/// text, so this terminates.
fn simplify_operands_pass<F: Fn(&Program) -> bool>(cur: &mut Program, interesting: &F) -> bool {
    let mut changed = false;
    let n = cur.insts().len();
    for i in 0..n {
        if is_neutral(&cur.insts()[i]) {
            continue;
        }
        let uop_count = cur.insts()[i].uops.len();
        for slot in 0..uop_count {
            for edit in 0..3u8 {
                let m = &cur.insts()[i];
                let u = &m.uops[slot];
                let mut nu = u.clone();
                let applies = match edit {
                    0 => {
                        // Zero a nonzero immediate.
                        match (nu.src1, nu.src2) {
                            (Operand::Imm(v), _) if v != 0 => {
                                nu.src1 = Operand::Imm(0);
                                true
                            }
                            (_, Operand::Imm(v)) if v != 0 => {
                                nu.src2 = Operand::Imm(0);
                                true
                            }
                            _ => false,
                        }
                    }
                    1 => {
                        // Zero a memory displacement.
                        if nu.offset != 0 {
                            nu.offset = 0;
                            true
                        } else {
                            false
                        }
                    }
                    _ => {
                        // Demote a second register source to `#0`
                        // (never the base of a memory op or the target
                        // of an indirect branch, both of which live in
                        // src1 and whose loss usually changes the
                        // failure class).
                        if let Operand::Reg(_) = nu.src2 {
                            nu.src2 = Operand::Imm(0);
                            true
                        } else {
                            false
                        }
                    }
                };
                if !applies {
                    continue;
                }
                let mut uops = m.uops.clone();
                uops[slot] = nu;
                let mut insts = cur.insts().to_vec();
                insts[i] = MacroInst::new(m.addr, m.len, m.kind, uops);
                let Some(candidate) = rebuild(insts, cur) else { continue };
                if interesting(&candidate) {
                    *cur = candidate;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_isa::{ProgramBuilder, Reg};

    /// A deliberately "buggy-looking" predicate: the failure reproduces
    /// iff the program still writes 7 into r3 somewhere. The minimizer
    /// should strip everything else.
    #[test]
    fn shrinks_to_the_interesting_core() {
        let mut b = ProgramBuilder::new(0x1000);
        for i in 0..24 {
            b.word(0x9000 + 8 * i, i as i64);
        }
        b.mov_imm(Reg::int(0), 1);
        b.mov_imm(Reg::int(1), 2);
        b.mov_imm(Reg::int(3), 7); // the core
        b.add(Reg::int(2), Reg::int(0), Reg::int(1));
        b.mov_imm(Reg::int(5), 99);
        b.halt();
        let p = b.build();

        let interesting = |q: &Program| {
            let Ok((snap, _)) = crate::run_oracle(q, 100_000) else { return false };
            snap.regs[3] == 7
        };
        let min = minimize(&p, interesting, 8);
        assert!(interesting(&min));
        // Everything except the mov and the halt neutralizes; data drops.
        let live: Vec<_> = min.insts().iter().filter(|m| !is_neutral(m)).collect();
        assert_eq!(live.len(), 2, "{:?}", live);
        assert!(live.iter().any(|m| contains_halt(m)));
        assert!(min.init_data().is_empty());
        // Same address map as the original: nothing moved.
        assert_eq!(min.insts().len(), p.insts().len());
        for (a, b) in min.insts().iter().zip(p.insts()) {
            assert_eq!((a.addr, a.len), (b.addr, b.len));
        }
    }

    #[test]
    fn uninteresting_input_is_returned_unchanged() {
        let mut b = ProgramBuilder::new(0x1000);
        b.halt();
        let p = b.build();
        let min = minimize(&p, |_| false, 4);
        assert_eq!(min.insts(), p.insts());
    }
}
