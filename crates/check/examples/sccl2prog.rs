//! Compiles a guest `.sccl` file and prints the `.sccprog` text —
//! the bridge from a guest-source reproducer to `scc-check minimize`.
fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().expect("usage: sccl2prog <file.sccl> [O0|O1|O2]");
    let opt = scc_lang::Opt::parse(&args.next().unwrap_or_else(|| "O0".into()))
        .expect("opt level");
    let src = std::fs::read_to_string(&path).expect("readable source");
    let c = scc_lang::compile(&src, &scc_lang::Options { opt, iters: 1 })
        .expect("guest program compiles");
    print!("{}", scc_check::serialize::dump_program(&c.program));
}
