//! Replays every committed reproducer in `check/repros/` against the
//! full configuration matrix.
//!
//! Reproducers are minimized programs (`.sccprog`) or guest sources
//! (`.sccl`, from `scc-check fuzz --guest`) that once exposed a
//! divergence; they are committed together with the fix, so each must
//! now match the oracle under every configuration. A failure here is a
//! regression of a previously fixed miscompaction.

use scc_check::serialize::parse_program;
use scc_check::{check_program, config_matrix, DEFAULT_MAX_CYCLES};
use std::path::PathBuf;

fn repro_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../check/repros")
}

#[test]
fn committed_reproducers_stay_fixed() {
    let dir = repro_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => return, // no reproducers committed yet
    };
    let matrix = config_matrix(true);
    let mut checked = 0usize;
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        let ext = path.extension().and_then(|e| e.to_str());
        let text = match ext {
            Some("sccprog") | Some("sccl") => std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display())),
            _ => continue,
        };
        // A guest-source reproducer is checked at every opt level — the
        // divergence it caught may live in the frontend or the pipeline.
        let programs: Vec<(String, scc_isa::Program)> = if ext == Some("sccl") {
            scc_lang::Opt::ALL
                .iter()
                .map(|&opt| {
                    let c = scc_lang::compile(&text, &scc_lang::Options { opt, iters: 1 })
                        .unwrap_or_else(|e| panic!("{} @ {opt:?}: {e}", path.display()));
                    (format!("{} @ {opt:?}", path.display()), c.program)
                })
                .collect()
        } else {
            let p = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            vec![(path.display().to_string(), p)]
        };
        for (label, p) in &programs {
            let divs = check_program(p, &matrix, DEFAULT_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{label}: oracle failed: {e}"));
            assert!(
                divs.is_empty(),
                "{label} regressed:\n{}",
                divs.iter().map(|d| format!("  {d}\n")).collect::<String>()
            );
        }
        checked += 1;
    }
    eprintln!("replayed {checked} reproducers from {}", dir.display());
}
