//! Golden lowering tests: the corpus guest programs compile to
//! **byte-identical** `.sccprog` text on every run, pinned by committed
//! golden files under `tests/golden/`.
//!
//! The pin catches two distinct regressions: nondeterminism anywhere in
//! the front end (lexer, parser, lowering, passes, assembler), and
//! accidental codegen drift — any intentional lowering change must
//! re-bless the goldens, which makes the diff reviewable instruction by
//! instruction. Re-bless with:
//!
//! ```text
//! SCC_BLESS=1 cargo test -p scc-check --test lang_golden
//! ```

use scc_check::serialize::{dump_program, parse_program};
use scc_lang::corpus::CORPUS;
use scc_lang::Opt;
use std::path::PathBuf;

/// Iteration count pinned in the goldens — independent of workload
/// scale so the files never churn when scale tuning changes.
const GOLDEN_ITERS: i64 = 2;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.sccprog"))
}

fn compile_golden(name: &str) -> String {
    let g = CORPUS.iter().find(|g| g.name == name).expect("corpus program");
    let c = g.compile(Opt::O2, GOLDEN_ITERS).expect("corpus compiles at O2");
    let mut text = String::new();
    text.push_str(&format!("# golden lowering: {} @ O2, ITERS={GOLDEN_ITERS}\n", g.file));
    text.push_str(&dump_program(&c.program));
    text
}

#[test]
fn corpus_lowering_matches_committed_goldens() {
    let bless = std::env::var_os("SCC_BLESS").is_some();
    let mut stale = Vec::new();
    for g in CORPUS {
        let text = compile_golden(g.name);
        // Determinism first: a second compilation must produce the
        // same bytes before comparing against anything on disk.
        assert_eq!(text, compile_golden(g.name), "{}: nondeterministic lowering", g.name);
        let path = golden_path(g.name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &text).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: cannot read golden {}: {e}", g.name, path.display()));
        if text != want {
            stale.push(g.name);
        }
    }
    assert!(
        stale.is_empty(),
        "goldens out of date for {stale:?}; re-bless with SCC_BLESS=1 and review the diff"
    );
}

#[test]
fn goldens_parse_round_trip_and_match_fresh_compilation() {
    for g in CORPUS {
        let path = golden_path(g.name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: cannot read golden {}: {e}", g.name, path.display()));
        let parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: golden does not parse: {e}", g.name));
        // The `.sccprog` hop is lossless: dump(parse(golden)) is the
        // golden again, modulo the comment header parse discards.
        let redumped = dump_program(&parsed);
        assert!(
            text.ends_with(&redumped),
            "{}: golden is not a fixed point of parse+dump",
            g.name
        );
        // And the parsed program IS the freshly compiled one.
        let c = g.compile(Opt::O2, GOLDEN_ITERS).expect("corpus compiles");
        assert_eq!(parsed.entry(), c.program.entry(), "{}", g.name);
        assert_eq!(parsed.init_data(), c.program.init_data(), "{}", g.name);
        assert_eq!(parsed.insts(), c.program.insts(), "{}", g.name);
    }
}

#[test]
fn goldens_disassemble_without_unknown_ops() {
    for g in CORPUS {
        let c = g.compile(Opt::O2, GOLDEN_ITERS).expect("corpus compiles");
        let asm = scc_isa::disasm::disassemble(&c.program);
        assert!(!asm.is_empty(), "{}: empty disassembly", g.name);
        assert!(
            !asm.contains("???") && !asm.contains("unknown"),
            "{}: disassembly has unknown ops:\n{asm}",
            g.name
        );
        // Every non-padding macro-op address appears in the listing.
        for inst in c.program.insts() {
            if inst.uops.iter().any(|u| u.op != scc_isa::Op::Nop) {
                let tag = format!("{:x}", inst.addr);
                assert!(asm.contains(&tag), "{}: {:#x} missing from disasm", g.name, inst.addr);
            }
        }
    }
}
