//! Fuzzer-driven store round-trip: seeded random programs (the same
//! generator the differential harness fuzzes with) are run across the
//! full optimization-level matrix, and every result is pushed through
//! the persistent store — encode, write, reopen with recovery, read,
//! decode — and must come back *byte-identical*.
//!
//! This is the persistence analogue of the architectural-invisibility
//! property: serving a result from disk must be indistinguishable from
//! re-running the simulation, down to the last bit of every counter,
//! register, and energy figure.

use std::path::PathBuf;

use scc_check::DEFAULT_MAX_CYCLES;
use scc_energy::EnergyModel;
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_pipeline::{Pipeline, RunOutcome};
use scc_sim::persist::{decode_result, encode_result};
use scc_sim::{energy_events, OptLevel, SimOptions, SimResult};
use scc_store::{Store, StoreConfig};

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scc-check-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one fuzz program under one level, packaged as the [`SimResult`]
/// the runner would persist for a real workload.
fn simulate(seed: u64, program: &scc_isa::Program, level: OptLevel) -> SimResult {
    let opts = SimOptions::new(level);
    let mut pipe = Pipeline::new(program, opts.to_pipeline_config());
    let res = pipe.run(DEFAULT_MAX_CYCLES);
    assert_eq!(res.outcome, RunOutcome::Halted, "fuzz-{seed} hung at {level}");
    let energy = EnergyModel::icelake().energy(&energy_events(&res.stats));
    SimResult {
        workload: format!("fuzz-{seed}"),
        level,
        stats: res.stats,
        energy,
        snapshot: res.snapshot,
        halted: true,
    }
}

#[test]
fn fuzz_results_survive_the_store_byte_identically_across_all_levels() {
    let dir = temp_store_dir("matrix");
    let cfg = RandProgConfig::default();
    let store_cfg = StoreConfig::new(scc_sim::persist::SCHEMA_VERSION, "fuzz-roundtrip");

    // Simulate and persist: every (seed, level) cell of the matrix.
    let mut originals = Vec::new();
    {
        let mut store = Store::open(&dir, store_cfg.clone()).expect("open store");
        for seed in 0..4u64 {
            let program = random_program(seed, &cfg);
            for level in OptLevel::all() {
                let result = simulate(seed, &program, level);
                let bytes = encode_result(&result);
                let key = format!("fuzz-{seed}|{}", level.label());
                store.put(&key, &bytes).expect("put");
                originals.push((key, bytes, result));
            }
        }
        store.sync().expect("sync");
    }

    // Reopen: the read side goes through segment recovery, the index
    // rebuild, and the CRC check — the full cold-start path.
    let mut store = Store::open(&dir, store_cfg).expect("reopen store");
    let rec = store.recovery();
    assert_eq!(rec.records_indexed as usize, originals.len(), "{rec:?}");
    assert_eq!(rec.corrupt_records_skipped, 0, "{rec:?}");
    assert_eq!(rec.torn_truncations, 0, "{rec:?}");

    for (key, bytes, original) in &originals {
        let read = store.get(key).expect("get").unwrap_or_else(|| panic!("{key} missing"));
        assert_eq!(&read, bytes, "{key}: stored bytes differ");
        let decoded = decode_result(&read).unwrap_or_else(|| panic!("{key} undecodable"));

        // Byte identity: re-encoding the decoded result reproduces the
        // original encoding exactly, and the architectural state the
        // differential harness compares is bit-equal.
        assert_eq!(encode_result(&decoded), *bytes, "{key}: round-trip not byte-stable");
        assert_eq!(decoded.snapshot, original.snapshot, "{key}: snapshot diverged");
        assert_eq!(decoded.workload, original.workload);
        assert_eq!(decoded.level, original.level);
        assert_eq!(decoded.halted, original.halted);
        assert_eq!(decoded.stats.cycles, original.stats.cycles);
        assert_eq!(decoded.stats.committed_uops, original.stats.committed_uops);
        assert_eq!(decoded.stats.program_uops, original.stats.program_uops);
        assert_eq!(decoded.energy_pj().to_bits(), original.energy_pj().to_bits());
    }

    // The levels of one seed are distinct records, not collisions: the
    // full matrix is individually addressable after recovery.
    assert_eq!(originals.len(), 4 * OptLevel::all().len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bumped_store_refuses_stale_fuzz_results() {
    // The staleness guard seen from the fuzzer's side: results written
    // by one engine revision must not be served by another.
    let dir = temp_store_dir("staleness");
    let program = random_program(7, &RandProgConfig::default());
    let result = simulate(7, &program, OptLevel::Full);
    let key = "fuzz-7|full-scc";
    {
        let mut store =
            Store::open(&dir, StoreConfig::new(scc_sim::persist::SCHEMA_VERSION, "rev-a"))
                .expect("open");
        store.put(key, &encode_result(&result)).expect("put");
        store.sync().expect("sync");
    }
    let mut store =
        Store::open(&dir, StoreConfig::new(scc_sim::persist::SCHEMA_VERSION, "rev-b"))
            .expect("reopen under new rev");
    assert!(store.recovery().version_mismatch_segments >= 1);
    assert_eq!(store.get(key).expect("get"), None, "stale result must not be served");
    let _ = std::fs::remove_dir_all(&dir);
}
