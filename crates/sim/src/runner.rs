//! Parallel experiment engine with a cross-figure result cache.
//!
//! Every figure and table in the evaluation boils down to the same unit
//! of work: *simulate one workload under one pipeline configuration*.
//! The runner fans those jobs out over a scoped worker pool (plain
//! `std::thread::scope`, no external dependencies) and memoizes each
//! result in a process-wide content-keyed cache, so e.g. the 19 baseline
//! runs that Figures 6, 9, 10, and 11 all need are simulated exactly
//! once per process.
//!
//! Determinism: each simulation is single-threaded and fully
//! deterministic, and results are returned in job order regardless of
//! which worker finished first — so report output is byte-identical to
//! the serial path (`tests/` assert this).
//!
//! Worker count defaults to the host's available parallelism;
//! binaries that honor the `SCC_JOBS` convention read the environment
//! once at their edge (via [`scc_jobs`]) and pass the count in
//! explicitly with [`Runner::with_jobs`] — the library itself never
//! consults the environment. Wall-clock throughput of every fresh
//! simulation is recorded and can be emitted as
//! `results/BENCH_throughput.json` via [`write_throughput_json`]; the
//! per-worker schedule is recorded as [`JobTiming`] entries
//! ([`schedule`]) for the Chrome trace exporter's runner tracks.

use crate::report::RunTiming;
use crate::{energy_events, persist, OptLevel, SimOptions, SimResult};
use scc_core::AuditLog;
use scc_energy::EnergyModel;
use scc_isa::trace::{shared, Event, SharedSink};
use scc_pipeline::{Metric, MetricValue, Pipeline, PipelineConfig, RunOutcome};
use scc_store::{RecoveryReport, Store, StoreConfig, StoreStats};
use scc_workloads::{Scale, Workload};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

/// One simulation job: a workload under a concrete pipeline
/// configuration.
///
/// Jobs borrow their workload, so batches can be built over a locally
/// generated suite without cloning programs.
#[derive(Clone, Debug)]
pub struct Job<'a> {
    /// The workload to simulate.
    pub workload: &'a Workload,
    /// The exact pipeline configuration to run it under.
    pub config: PipelineConfig,
    /// Cycle budget (safety net; workloads halt well before).
    pub max_cycles: u64,
    /// Level label recorded on the result (and in throughput logs).
    pub level: OptLevel,
}

impl<'a> Job<'a> {
    /// A job described by high-level [`SimOptions`] (the common case for
    /// the figure harnesses).
    pub fn new(workload: &'a Workload, opts: &SimOptions) -> Job<'a> {
        Job {
            workload,
            config: opts.to_pipeline_config(),
            max_cycles: opts.max_cycles,
            level: opts.level,
        }
    }

    /// A job with an explicit raw [`PipelineConfig`] (the ablation
    /// sweeps mutate configs directly). Uses the default cycle budget.
    pub fn from_config(
        workload: &'a Workload,
        config: PipelineConfig,
        level: OptLevel,
    ) -> Job<'a> {
        Job { workload, config, max_cycles: crate::build::DEFAULT_MAX_CYCLES, level }
    }

    /// The content key identifying this job's result — a thin wrapper
    /// over [`job_key`], which is the single canonical serialization
    /// shared by the result cache, the persistent store, and the
    /// `scc-route` shard router.
    pub fn key(&self) -> String {
        job_key(
            &self.workload.name,
            self.workload.scale.iters,
            self.level,
            self.max_cycles,
            &self.config,
        )
    }
}

/// **The canonical content-key serialization.** This string is the
/// identity of a simulation result everywhere in the system:
///
/// - the runner's in-memory LRU cache keys entries on it,
/// - `scc-store` persists records under it (so a key change invalidates
///   every stored result — bump [`crate::persist::SCHEMA_VERSION`] when
///   deliberately changing the encoding),
/// - `scc-route` consistent-hashes it to place jobs on shards (so equal
///   keys land on the same shard and per-shard cache locality falls out
///   for free), and
/// - the `key` service verb returns it to clients.
///
/// Workload generation is deterministic, so `(name, iters)` pins the
/// program; [`PipelineConfig::content_key`] pins every knob of the
/// machine by explicit field-by-field serialization (a `Debug`
/// rendering is *not* a stable identity — format changes or skipped
/// fields would silently alias or split cache entries). Two jobs with
/// equal keys are guaranteed to produce identical results.
///
/// The encoding is covered by a stability test
/// (`key_encoding_is_stable` below) that fails if it drifts; any
/// intentional change must update that test *and* the store schema
/// version together.
pub fn job_key(
    workload: &str,
    iters: i64,
    level: OptLevel,
    max_cycles: u64,
    config: &PipelineConfig,
) -> String {
    format!("{workload}|iters={iters}|{level}|max={max_cycles}|{}", config.content_key())
}

/// The synthetic workload name for an ingested `SCCTRACE1` program:
/// `trace:` plus the trace's 16-hex-digit content digest (see
/// `scc_lang::trace::program_digest`). Registry workload names never
/// contain `:`, so the namespaces cannot collide.
///
/// Trace jobs get no special identity machinery: the digest-derived
/// name flows through [`job_key`] exactly like a registry name, so the
/// result cache, the persistent store, and the `scc-route` hash ring
/// place trace jobs uniformly — two clients submitting byte-identical
/// traces share a cache entry and a shard.
pub fn trace_workload_name(digest: u64) -> String {
    format!("trace:{digest:016x}")
}

/// True if `name` identifies an ingested trace job (see
/// [`trace_workload_name`]) rather than a registry workload.
pub fn is_trace_workload(name: &str) -> bool {
    name.starts_with("trace:")
}

/// A job that could not produce a measurement. Each variant carries
/// enough identity to reproduce the failure — and none of them panic,
/// so a long-running process (the `scc-serve` service) turns every one
/// into a clean protocol error instead of a dead worker.
#[derive(Clone, Debug)]
pub enum JobError {
    /// The workload exhausted its cycle budget without halting.
    BudgetExhausted {
        /// Workload name.
        workload: String,
        /// Optimization level label of the failing job.
        level: OptLevel,
        /// The cycle budget that was exhausted.
        max_cycles: u64,
        /// Stable content key of the pipeline configuration (see
        /// [`PipelineConfig::content_key`]).
        config_key: String,
    },
    /// The requested workload name does not exist in the suite (see
    /// [`resolve_workload`]); client-supplied names reach the runner
    /// unvalidated, so this must be an error, not a panic.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// The run was cancelled by its deadline / cancellation check before
    /// it halted (see [`Runner::try_run_one`]).
    Cancelled {
        /// Workload name.
        workload: String,
        /// Optimization level label of the cancelled job.
        level: OptLevel,
        /// Cycles simulated before the cancellation check tripped.
        cycles_run: u64,
    },
}

impl JobError {
    /// A stable machine-readable discriminant, used as the protocol
    /// error kind by the serving layer.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::BudgetExhausted { .. } => "budget_exhausted",
            JobError::UnknownWorkload { .. } => "unknown_workload",
            JobError::Cancelled { .. } => "deadline_exceeded",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::BudgetExhausted { workload, level, max_cycles, config_key } => write!(
                f,
                "workload `{workload}` did not halt within {max_cycles} cycles at {level} \
                 (config {config_key})"
            ),
            JobError::UnknownWorkload { name } => {
                write!(f, "unknown workload `{name}` (see `se --list-workloads`)")
            }
            JobError::Cancelled { workload, level, cycles_run } => write!(
                f,
                "workload `{workload}` at {level} cancelled after {cycles_run} simulated cycles"
            ),
        }
    }
}

impl std::error::Error for JobError {}

/// Looks a workload up by name, failing with [`JobError::UnknownWorkload`]
/// instead of forcing callers into `unwrap`. Every path that accepts a
/// workload name from outside the process (service requests, CLI flags,
/// bench sweeps) should resolve through here.
pub fn resolve_workload(name: &str, scale: Scale) -> Result<Workload, JobError> {
    scc_workloads::workload(name, scale)
        .ok_or_else(|| JobError::UnknownWorkload { name: name.to_string() })
}

/// Name-only validation: checks that `name` is a known workload without
/// generating any program. Admission paths (the serving I/O thread
/// rejecting typos before spending a queue slot) must use this rather
/// than [`resolve_workload`] — resolving builds the workload's whole
/// micro-op program, which is milliseconds of work the fast path cannot
/// afford per request.
pub fn validate_workload_name(name: &str) -> Result<(), JobError> {
    if scc_workloads::workload_exists(name) {
        Ok(())
    } else {
        Err(JobError::UnknownWorkload { name: name.to_string() })
    }
}

/// Worker count from the environment: `SCC_JOBS` if set to a positive
/// integer, otherwise [`default_jobs`].
///
/// This is a *binary-edge* helper: the `scc-bench` and `scc-check`
/// entry points call it exactly once at startup and pass the result to
/// [`Runner::with_jobs`]. Library code never reads the environment —
/// [`Runner::new`] uses [`default_jobs`] directly, so embedding the
/// crate in another process can't be perturbed by ambient variables.
pub fn scc_jobs() -> usize {
    std::env::var("SCC_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(default_jobs)
}

/// The environment-free default worker count: the host's available
/// parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One entry of the runner's worker-schedule log: which worker slot ran
/// which job over which wall-clock window (microseconds since the
/// process epoch). Cache hits are recorded as zero-length spans on
/// worker 0.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobTiming {
    /// Worker slot (0-based) the job ran on.
    pub worker: usize,
    /// Start, µs since the process epoch.
    pub start_us: u64,
    /// End, µs since the process epoch.
    pub end_us: u64,
    /// Workload name.
    pub workload: String,
    /// Optimization-level label.
    pub level: &'static str,
    /// True when the result was resolved from the cross-figure cache.
    pub cached: bool,
    /// Request ID of the service request that submitted the job, if it
    /// came through `scc-serve` ([`Runner::try_run_one`]); propagated
    /// into the exported trace's runner track.
    pub request: Option<String>,
}

/// Microseconds since the process-wide epoch (first use).
fn epoch_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Locks a mutex, recovering the data of a poisoned one. Every global
/// in this module is poison-tolerant: a panicking job in one worker (or
/// one service request) must not wedge every later request in a
/// long-running process. The protected structures are plain logs and
/// maps whose invariants hold between every individual mutation, so the
/// data a panicking thread left behind is safe to keep using.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Default capacity of the process-wide result cache, in entries. Each
/// entry holds a full [`SimResult`] (including the final memory image),
/// so an unbounded cache is not an option for a resident service; the
/// figure harnesses need well under this many distinct configurations.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Point-in-time counters of the cross-figure result cache (see
/// [`cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub len: usize,
    /// Maximum resident entries before eviction.
    pub capacity: usize,
    /// Lookups that found a resident result.
    pub hits: u64,
    /// Lookups that missed (and went to simulation).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// The content-keyed result cache: bounded, least-recently-used-ish
/// (exact LRU by access tick, evicting the stalest entry on overflow),
/// with hit/miss/eviction accounting.
struct ResultCache {
    /// key → (last-use tick, result).
    map: HashMap<String, (u64, Arc<SimResult>)>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache { map: HashMap::new(), tick: 0, capacity, hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks `key` up, bumping its recency and the hit/miss counters.
    fn get(&mut self, key: &str) -> Option<Arc<SimResult>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((last_used, r)) => {
                *last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(r))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting the least-recently-used entry if the
    /// cache is full. A capacity of zero disables residency entirely.
    fn insert(&mut self, key: String, r: Arc<SimResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) {
            self.evict_down_to(self.capacity.saturating_sub(1));
        }
        self.map.insert(key, (self.tick, r));
    }

    /// Evicts least-recently-used entries until at most `target` remain.
    fn evict_down_to(&mut self, target: usize) {
        while self.map.len() > target {
            // Access ticks are unique, so the minimum is unambiguous.
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            self.map.remove(&stalest);
            self.evictions += 1;
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            len: self.map.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

fn cache() -> &'static Mutex<ResultCache> {
    static CACHE: OnceLock<Mutex<ResultCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ResultCache::new(DEFAULT_CACHE_CAPACITY)))
}

fn timing_log() -> &'static Mutex<Vec<RunTiming>> {
    static LOG: OnceLock<Mutex<Vec<RunTiming>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn schedule_log() -> &'static Mutex<Vec<JobTiming>> {
    static LOG: OnceLock<Mutex<Vec<JobTiming>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sets the result cache's capacity (entries), evicting down to the new
/// bound immediately. The service binary exposes this as
/// `--cache-capacity`; the default is [`DEFAULT_CACHE_CAPACITY`].
pub fn set_cache_capacity(capacity: usize) {
    let mut c = lock_unpoisoned(cache());
    c.capacity = capacity;
    c.evict_down_to(capacity);
}

/// Snapshot of the result cache's occupancy and hit/miss/eviction
/// counters.
pub fn cache_stats() -> CacheStats {
    lock_unpoisoned(cache()).stats()
}

/// The cache counters as registry metrics (`runner.cache.*`), in the
/// same [`Metric`] shape as [`scc_pipeline::PipelineStats::metrics`] —
/// the service's `stats` verb reports these alongside its queue gauges.
pub fn cache_metrics() -> Vec<Metric> {
    let s = cache_stats();
    let counter = |name: &str, v: u64| Metric {
        name: name.to_string(),
        value: MetricValue::Counter(v),
    };
    vec![
        counter("runner.cache.len", s.len as u64),
        counter("runner.cache.capacity", s.capacity as u64),
        counter("runner.cache.hits", s.hits),
        counter("runner.cache.misses", s.misses),
        counter("runner.cache.evictions", s.evictions),
    ]
}

/// Cap on the buffered store trace events; a resident service doing
/// millions of lookups must not grow the op log without bound, and a
/// trace of the first sixteen-thousand store operations is more than a
/// viewer can usefully render anyway.
const STORE_OPS_CAP: usize = 16_384;

/// How often the background compactor wakes to check the segment tiers.
const COMPACTOR_POLL: Duration = Duration::from_millis(200);

/// The persistent result tier: an [`scc_store::Store`] of encoded
/// [`SimResult`]s keyed by the runner's content key, sitting beneath the
/// in-memory LRU.
///
/// * **Write-through** — every freshly simulated result is appended to
///   the store (see [`Runner::with_store`]); `put` does not fsync, so a
///   crash can lose the page-cache tail but `kill -9` cannot (the
///   service's drain path calls [`StoreTier::flush`] before exit).
/// * **Read-through** — an LRU miss probes the store before simulating;
///   a hit decodes and is promoted back into the LRU.
/// * **Staleness** — segments are stamped with
///   [`persist::SCHEMA_VERSION`] and the engine revision; recovery
///   refuses mismatched segments wholesale, so a warm start can never
///   serve results encoded by a different codec or simulator build.
/// * **Compaction** — a detached background thread periodically merges
///   sealed segments (newest record per key wins); it holds only a
///   [`Weak`] reference and exits when the last tier handle drops.
///
/// All methods are `&self` and internally locked, so one tier is shared
/// across the service's worker pool behind an [`Arc`].
pub struct StoreTier {
    store: Mutex<Store>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    decode_rejects: AtomicU64,
    preloaded: AtomicU64,
    io_errors: AtomicU64,
    ops: Mutex<Vec<Event>>,
}

impl std::fmt::Debug for StoreTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreTier")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("writes", &self.writes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The workload portion of a content key, used as the human-readable
/// detail on store trace events (the full key is long and opaque).
fn key_label(key: &str) -> String {
    key.split('|').next().unwrap_or("").to_string()
}

fn compactor_loop(tier: Weak<StoreTier>) {
    loop {
        std::thread::sleep(COMPACTOR_POLL);
        // Upgrade per iteration: when the last real handle drops, the
        // upgrade fails and the thread exits — no shutdown signal needed.
        let Some(tier) = tier.upgrade() else { return };
        let compacted = {
            let mut s = lock_unpoisoned(&tier.store);
            if s.needs_compaction() {
                s.maybe_compact().unwrap_or(false)
            } else {
                false
            }
        };
        if compacted {
            let (segments, stats) = {
                let s = lock_unpoisoned(&tier.store);
                (s.segment_count(), s.stats())
            };
            tier.log_op(
                "compact",
                format!(
                    "segments={segments} dups_dropped={} tombstones_dropped={}",
                    stats.compaction_dups_dropped, stats.compaction_tombstones_dropped
                ),
                stats.compactions,
            );
        }
    }
}

impl StoreTier {
    /// Opens (or creates) the persistent tier at `dir`, running
    /// checksummed recovery, stamping new segments with
    /// [`persist::SCHEMA_VERSION`] and [`git_rev`], and starting the
    /// background compactor.
    pub fn open(dir: &Path) -> std::io::Result<Arc<StoreTier>> {
        StoreTier::open_with(dir, persist::SCHEMA_VERSION, &git_rev())
    }

    /// [`StoreTier::open`] with an explicit schema version and engine
    /// revision — the staleness tests use this to prove that bumping
    /// either invalidates every warm hit.
    pub fn open_with(
        dir: &Path,
        schema_version: u32,
        engine_rev: &str,
    ) -> std::io::Result<Arc<StoreTier>> {
        let store = Store::open(dir, StoreConfig::new(schema_version, engine_rev))?;
        let recovery = store.recovery();
        let tier = Arc::new(StoreTier {
            store: Mutex::new(store),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            decode_rejects: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            ops: Mutex::new(Vec::new()),
        });
        tier.log_op(
            "recover",
            format!(
                "segments={} corrupt_skipped={} torn={} invalidated={}",
                recovery.segments_scanned,
                recovery.corrupt_records_skipped,
                recovery.torn_truncations,
                recovery.invalidated_segments()
            ),
            recovery.records_indexed,
        );
        let weak = Arc::downgrade(&tier);
        // Detached on purpose: the loop owns no real handle and dies with
        // the tier. Spawn failure only loses background compaction.
        let _ = std::thread::Builder::new()
            .name("scc-store-compact".into())
            .spawn(move || compactor_loop(weak));
        Ok(tier)
    }

    /// Looks a content key up in the store, decoding on hit. Any failure
    /// — absent key, I/O error, CRC reject inside the store, stale or
    /// damaged encoding — degrades to `None` (a miss), never an error.
    pub fn get(&self, key: &str) -> Option<Arc<SimResult>> {
        // The guard is a temporary: the store lock is released at the end
        // of this statement, before decoding.
        let looked_up = lock_unpoisoned(&self.store).get(key);
        let bytes = match looked_up {
            Ok(Some(bytes)) => bytes,
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.log_op("miss", key_label(key), 1);
                return None;
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.log_op("miss", key_label(key), 1);
                return None;
            }
        };
        match persist::decode_result(&bytes) {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.log_op("hit", key_label(key), 1);
                Some(Arc::new(result))
            }
            None => {
                // Bytes survived the store's CRC but don't decode: not
                // this codec's output. Count it loudly and miss.
                self.decode_rejects.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.log_op("miss", key_label(key), 1);
                None
            }
        }
    }

    /// Appends one result under its content key. Best-effort: an I/O
    /// error is counted (`runner.store.io_errors`) and dropped — a full
    /// disk must not fail the simulation that produced the result.
    pub fn put(&self, key: &str, result: &SimResult) {
        let bytes = persist::encode_result(result);
        let len = bytes.len() as u64;
        match lock_unpoisoned(&self.store).put(key, &bytes) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.log_op("write", key_label(key), len);
            }
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fsyncs the active segment — the drain path's durability barrier.
    pub fn flush(&self) -> std::io::Result<()> {
        lock_unpoisoned(&self.store).sync()?;
        self.log_op("flush", String::new(), 1);
        Ok(())
    }

    /// Decodes every live record into the process-wide LRU (the
    /// `scc-serve` `warm` verb). Returns how many entries were promoted;
    /// undecodable values are counted as `decode_rejects` and skipped.
    pub fn warm_into_cache(&self) -> std::io::Result<usize> {
        // Take the snapshot with only the store lock held, then insert
        // with only the cache lock held — holding both at once would
        // order store→cache while the runner's read-through path orders
        // cache→store.
        let live = lock_unpoisoned(&self.store).snapshot_live()?;
        let mut promoted = 0usize;
        for (key, bytes) in live {
            match persist::decode_result(&bytes) {
                Some(result) => {
                    lock_unpoisoned(cache()).insert(key, Arc::new(result));
                    promoted += 1;
                }
                None => {
                    self.decode_rejects.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.preloaded.fetch_add(promoted as u64, Ordering::Relaxed);
        self.log_op("warm", format!("entries={promoted}"), promoted as u64);
        Ok(promoted)
    }

    /// The tier's counters as registry metrics (`runner.store.*`), in the
    /// same shape as [`cache_metrics`]; the service's `stats` verb
    /// reports these alongside the LRU's.
    pub fn metrics(&self) -> Vec<Metric> {
        let (stats, recovery, segments) = {
            let s = lock_unpoisoned(&self.store);
            (s.stats(), s.recovery(), s.segment_count())
        };
        let counter = |name: &str, v: u64| Metric {
            name: name.to_string(),
            value: MetricValue::Counter(v),
        };
        vec![
            counter("runner.store.hits", self.hits.load(Ordering::Relaxed)),
            counter("runner.store.misses", self.misses.load(Ordering::Relaxed)),
            counter("runner.store.writes", self.writes.load(Ordering::Relaxed)),
            counter("runner.store.decode_rejects", self.decode_rejects.load(Ordering::Relaxed)),
            counter("runner.store.preloaded", self.preloaded.load(Ordering::Relaxed)),
            counter("runner.store.io_errors", self.io_errors.load(Ordering::Relaxed)),
            counter("runner.store.segments", segments as u64),
            counter("runner.store.bytes_written", stats.bytes_written),
            counter("runner.store.compactions", stats.compactions),
            counter("runner.store.compaction_dups_dropped", stats.compaction_dups_dropped),
            counter("runner.store.recovered_records", recovery.records_indexed),
            counter("runner.store.recovery_corrupt_skipped", recovery.corrupt_records_skipped),
            counter("runner.store.recovery_torn_truncations", recovery.torn_truncations),
            counter(
                "runner.store.recovery_invalidated_segments",
                recovery.invalidated_segments(),
            ),
        ]
    }

    /// The recovery report of the open that created this tier.
    pub fn recovery(&self) -> RecoveryReport {
        lock_unpoisoned(&self.store).recovery()
    }

    /// Counters of the underlying segment store.
    pub fn store_stats(&self) -> StoreStats {
        lock_unpoisoned(&self.store).stats()
    }

    /// The buffered store trace events (recover/hit/miss/write/warm/
    /// flush/compact), for
    /// [`crate::trace_export::replay_store_ops`]. Capped at
    /// [`STORE_OPS_CAP`] entries.
    pub fn trace_events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.ops).clone()
    }

    fn log_op(&self, op: &'static str, detail: String, count: u64) {
        let mut ops = lock_unpoisoned(&self.ops);
        if ops.len() < STORE_OPS_CAP {
            ops.push(Event::StoreOp { ts_us: epoch_us(), op, detail, count });
        }
    }
}

/// Runs one job to completion (the same semantics as
/// [`crate::run_workload`], but from a raw config), optionally bounded
/// by a wall-clock deadline and optionally with the SCC decision audit
/// log attached.
///
/// A workload that exhausts its cycle budget (or trips its deadline)
/// returns a [`JobError`] instead of panicking: a panic inside a scoped
/// worker would abort the whole pool mid-run, whereas the error
/// propagates to the submitting thread with the job's identity attached.
fn execute(
    job: &Job<'_>,
    deadline: Option<Instant>,
    audit: bool,
) -> Result<(SimResult, Option<String>), JobError> {
    let mut pipe = Pipeline::new(&job.workload.program, job.config.clone());
    if let Some(deadline) = deadline {
        pipe.set_cancel_check(Box::new(move || Instant::now() >= deadline));
    }
    let audit_log = if audit {
        let log = shared(AuditLog::new());
        pipe.attach_sink(log.clone() as SharedSink);
        Some(log)
    } else {
        None
    };
    let res = pipe.run(job.max_cycles);
    match res.outcome {
        RunOutcome::Halted => {}
        RunOutcome::Cancelled => {
            return Err(JobError::Cancelled {
                workload: job.workload.name.to_string(),
                level: job.level,
                cycles_run: res.stats.cycles,
            })
        }
        RunOutcome::CyclesExhausted => {
            return Err(JobError::BudgetExhausted {
                workload: job.workload.name.to_string(),
                level: job.level,
                max_cycles: job.max_cycles,
                config_key: job.config.content_key(),
            })
        }
    }
    let energy = EnergyModel::icelake().energy(&energy_events(&res.stats));
    let audit_jsonl = audit_log.map(|a| a.borrow().to_jsonl());
    Ok((
        SimResult {
            workload: job.workload.name.to_string(),
            level: job.level,
            stats: res.stats,
            energy,
            snapshot: res.snapshot,
            halted: true,
        },
        audit_jsonl,
    ))
}

/// Fans `items` out over up to `workers` scoped threads, applying `f`
/// to each and returning the results in item order regardless of which
/// worker finished first. This is the pool underneath [`Runner::run`],
/// exported so other harnesses (the `scc-check` differential driver)
/// share one worker-pool implementation.
pub fn parallel_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(workers, items, |_, item| f(item))
}

/// [`parallel_map`] with the worker slot index (0-based) passed to `f` —
/// the runner uses it to attribute each job to a scheduling track.
pub fn parallel_map_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let next = AtomicUsize::new(0);
    let workers = workers.clamp(1, items.len());
    std::thread::scope(|s| {
        for slot in 0..workers {
            let f = &f;
            let next = &next;
            let done = &done;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(slot, &items[i]);
                done.lock().unwrap().push((i, r));
            });
        }
    });
    let mut done = done.into_inner().unwrap();
    done.sort_by_key(|(i, _)| *i);
    done.into_iter().map(|(_, r)| r).collect()
}

/// The experiment runner: a worker pool plus the shared result cache,
/// optionally backed by a persistent [`StoreTier`].
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    use_cache: bool,
    store: Option<Arc<StoreTier>>,
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::new()
    }
}

impl Runner {
    /// The standard runner: one worker per available core, shared cache.
    /// Environment-free — binaries honoring `SCC_JOBS` resolve it once
    /// via [`scc_jobs`] and use [`Runner::with_jobs`].
    pub fn new() -> Runner {
        Runner { jobs: default_jobs(), use_cache: true, store: None }
    }

    /// A runner with an explicit worker count (still cached).
    pub fn with_jobs(jobs: usize) -> Runner {
        Runner { jobs: jobs.max(1), use_cache: true, store: None }
    }

    /// A single-threaded runner that bypasses the cache entirely —
    /// the reference path the determinism tests compare against.
    pub fn serial_uncached() -> Runner {
        Runner { jobs: 1, use_cache: false, store: None }
    }

    /// Attaches a persistent tier beneath the LRU: fresh results are
    /// written through to it, and an LRU miss probes it before paying
    /// for a simulation. The tier works with any runner flavor — on an
    /// uncached runner the store becomes the *only* result cache, which
    /// is exactly what the store's identity tests exercise.
    pub fn with_store(mut self, store: Arc<StoreTier>) -> Runner {
        self.store = Some(store);
        self
    }

    /// The attached persistent tier, if any.
    pub fn store_tier(&self) -> Option<&Arc<StoreTier>> {
        self.store.as_ref()
    }

    /// Worker count this runner fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch of jobs, returning results in job order.
    ///
    /// # Panics
    ///
    /// Panics on the submitting thread if any job fails to halt within
    /// its cycle budget, naming the workload and config; use
    /// [`Runner::try_run`] to handle the failure instead.
    pub fn run(&self, jobs: &[Job<'_>]) -> Vec<Arc<SimResult>> {
        self.try_run(jobs).unwrap_or_else(|e| panic!("simulation job failed: {e}"))
    }

    /// Runs a batch of jobs, returning results in job order.
    ///
    /// Cache hits are resolved up front; misses are deduplicated by
    /// content key and simulated on the worker pool. Results land back
    /// in their submission slots, so output ordering (and therefore any
    /// report built from it) is independent of worker scheduling.
    ///
    /// A job whose workload does not halt within its cycle budget does
    /// not panic inside the pool (which would abort every in-flight
    /// worker); the failure propagates here as a [`JobError`] carrying
    /// the workload name and full config key. Successfully simulated
    /// jobs from the same batch still enter the cache.
    pub fn try_run(&self, jobs: &[Job<'_>]) -> Result<Vec<Arc<SimResult>>, JobError> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        let mut out: Vec<Option<Arc<SimResult>>> = vec![None; jobs.len()];
        let mut hits: Vec<RunTiming> = Vec::new();
        let mut sched: Vec<JobTiming> = Vec::new();

        // Resolve cache hits (LRU first, then the persistent tier) and
        // collect the unique misses.
        let mut misses: Vec<(usize, &str)> = Vec::new(); // (job index, key)
        {
            let mut cached = if self.use_cache { Some(lock_unpoisoned(cache())) } else { None };
            let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
            for (i, key) in keys.iter().enumerate() {
                let lru = cached.as_mut().and_then(|c| c.get(key.as_str()));
                let r = match lru {
                    Some(r) => Some(r),
                    // Read-through: an LRU miss probes the store tier
                    // and promotes a hit back into the LRU.
                    None => match self.store.as_ref().and_then(|t| t.get(key)) {
                        Some(r) => {
                            if let Some(c) = cached.as_mut() {
                                c.insert(key.clone(), Arc::clone(&r));
                            }
                            Some(r)
                        }
                        None => None,
                    },
                };
                if let Some(r) = r {
                    hits.push(RunTiming {
                        workload: r.workload.clone(),
                        level: r.level.label(),
                        wall_secs: 0.0,
                        uops: r.stats.committed_uops,
                        cached: true,
                    });
                    let now = epoch_us();
                    sched.push(JobTiming {
                        worker: 0,
                        start_us: now,
                        end_us: now,
                        workload: r.workload.clone(),
                        level: r.level.label(),
                        cached: true,
                        request: None,
                    });
                    out[i] = Some(r);
                } else if seen.insert(key.as_str()) {
                    misses.push((i, key));
                }
            }
        }

        // Fan the misses out over the shared pool; each simulation is
        // independent and results come back in submission order.
        type Computed = (Result<SimResult, JobError>, f64, usize, u64, u64);
        let computed: Vec<Computed> = parallel_map_indexed(self.jobs, &misses, |slot, &(ji, _)| {
            let start_us = epoch_us();
            let t0 = Instant::now();
            let r = execute(&jobs[ji], None, false).map(|(r, _)| r);
            (r, t0.elapsed().as_secs_f64(), slot, start_us, epoch_us())
        });

        // Publish results in deterministic (submission) order. The good
        // results of a batch with one bad job still land in the cache;
        // the first error (by submission order) propagates after.
        let mut first_err: Option<JobError> = None;
        let mut fresh: Vec<RunTiming> = Vec::new();
        for (&(ji, _), (res, secs, slot, start_us, end_us)) in misses.iter().zip(computed) {
            sched.push(JobTiming {
                worker: slot,
                start_us,
                end_us,
                workload: jobs[ji].workload.name.to_string(),
                level: jobs[ji].level.label(),
                cached: false,
                request: None,
            });
            let r = match res {
                Ok(r) => r,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    continue;
                }
            };
            fresh.push(RunTiming {
                workload: r.workload.clone(),
                level: r.level.label(),
                wall_secs: secs,
                uops: r.stats.committed_uops,
                cached: false,
            });
            let r = Arc::new(r);
            if self.use_cache {
                lock_unpoisoned(cache()).insert(keys[ji].clone(), Arc::clone(&r));
            }
            if let Some(tier) = &self.store {
                tier.put(&keys[ji], &r);
            }
            out[ji] = Some(r);
        }
        if self.use_cache {
            let mut log = lock_unpoisoned(timing_log());
            log.extend(fresh);
            log.extend(hits);
            drop(log);
            lock_unpoisoned(schedule_log()).extend(sched);
        }
        if let Some(e) = first_err {
            return Err(e);
        }

        // Duplicate keys within the batch resolve off the freshly
        // computed results.
        for i in 0..out.len() {
            if out[i].is_none() {
                let donor =
                    misses.iter().find(|(_, key)| *key == keys[i]).map(|(j, _)| *j);
                out[i] = donor.and_then(|j| out[j].clone());
            }
        }

        Ok(out.into_iter().map(|r| r.expect("every job resolved")).collect())
    }

    /// Runs a single job on the calling thread through the shared result
    /// cache — the execution path of one `scc-serve` worker. Returns the
    /// result, whether it was a cache hit, and (when `audit` is set) the
    /// SCC decision audit log of the run as JSON Lines.
    ///
    /// * `deadline` — wall-clock bound; the cancellation check threaded
    ///   into the simulation loop trips at the first 4096-cycle poll past
    ///   it and the job fails with [`JobError::Cancelled`]. Cancelled
    ///   runs never enter the cache (their stats are partial), and an
    ///   already-expired deadline cancels before simulating a cycle.
    /// * `request` — request ID recorded on the job's [`JobTiming`]
    ///   schedule entry, so service requests are attributable in the
    ///   exported trace's runner track.
    /// * `audit` — attach an [`AuditLog`] sink to the run. Audit is a
    ///   property of an *execution*, not a result, so audit requests
    ///   bypass the cache lookup (they still publish their result for
    ///   later non-audit requests). The observability layer guarantees an
    ///   attached sink does not perturb the simulation.
    pub fn try_run_one(
        &self,
        job: &Job<'_>,
        deadline: Option<Instant>,
        request: Option<&str>,
        audit: bool,
    ) -> Result<RunOne, JobError> {
        if !audit {
            if let Some(r) = self.try_cached(&job.key(), request) {
                return Ok(RunOne { result: r, cached: true, audit_jsonl: None });
            }
        }
        self.run_fresh(job, deadline, request, audit)
    }

    /// Executes `job` unconditionally — no tier probe — and publishes
    /// the result to the LRU and the persistent store: the miss half of
    /// [`Runner::try_run_one`]. A caller that already probed with
    /// [`Runner::try_cached`] lands here so the miss is not counted a
    /// second time.
    pub fn run_fresh(
        &self,
        job: &Job<'_>,
        deadline: Option<Instant>,
        request: Option<&str>,
        audit: bool,
    ) -> Result<RunOne, JobError> {
        let key = job.key();
        let start_us = epoch_us();
        let t0 = Instant::now();
        let (result, audit_jsonl) = execute(job, deadline, audit)?;
        let wall = t0.elapsed().as_secs_f64();
        let result = Arc::new(result);
        if self.use_cache {
            lock_unpoisoned(cache()).insert(key.clone(), Arc::clone(&result));
            lock_unpoisoned(timing_log()).push(RunTiming {
                workload: job.workload.name.to_string(),
                level: job.level.label(),
                wall_secs: wall,
                uops: result.stats.committed_uops,
                cached: false,
            });
            lock_unpoisoned(schedule_log()).push(JobTiming {
                worker: 0,
                start_us,
                end_us: epoch_us(),
                workload: job.workload.name.to_string(),
                level: job.level.label(),
                cached: false,
                request: request.map(str::to_string),
            });
        }
        if let Some(tier) = &self.store {
            tier.put(&key, &result);
        }
        Ok(RunOne { result, cached: false, audit_jsonl })
    }

    /// Probes the result tiers (LRU, then the persistent store,
    /// promoting a store hit into the LRU) by canonical key alone,
    /// without resolving a workload or building its program.
    ///
    /// This is the serving fast path: [`job_key`] is a pure string
    /// computation over the request fields, so a cache hit costs a map
    /// lookup instead of a program build — the build is orders of
    /// magnitude more expensive than the lookup and was, before this
    /// existed, paid on every hit. Hit/miss accounting is identical to
    /// the probe inside [`Runner::try_run_one`]; `request` lands on the
    /// hit's schedule entry, as for any other cached resolution.
    ///
    /// Callers that miss should execute via [`Runner::run_fresh`], not
    /// [`Runner::try_run_one`], so the miss is counted exactly once.
    pub fn try_cached(&self, key: &str, request: Option<&str>) -> Option<Arc<SimResult>> {
        let lru = if self.use_cache { lock_unpoisoned(cache()).get(key) } else { None };
        let r = match lru {
            Some(r) => r,
            None => {
                let r = self.store.as_ref().and_then(|t| t.get(key))?;
                if self.use_cache {
                    lock_unpoisoned(cache()).insert(key.to_string(), Arc::clone(&r));
                }
                r
            }
        };
        if self.use_cache {
            let now = epoch_us();
            lock_unpoisoned(timing_log()).push(RunTiming {
                workload: r.workload.clone(),
                level: r.level.label(),
                wall_secs: 0.0,
                uops: r.stats.committed_uops,
                cached: true,
            });
            lock_unpoisoned(schedule_log()).push(JobTiming {
                worker: 0,
                start_us: now,
                end_us: now,
                workload: r.workload.clone(),
                level: r.level.label(),
                cached: true,
                request: request.map(str::to_string),
            });
        }
        Some(r)
    }
}

/// Outcome of [`Runner::try_run_one`]: the simulation result plus how it
/// was produced.
#[derive(Clone, Debug)]
pub struct RunOne {
    /// The simulation result (shared with the cache).
    pub result: Arc<SimResult>,
    /// True when the result came from the cross-figure cache.
    pub cached: bool,
    /// The run's SCC decision audit log (JSON Lines), present only when
    /// auditing was requested (audited runs are always fresh).
    pub audit_jsonl: Option<String>,
}

/// Snapshot of the process-wide throughput log (one entry per run the
/// cached runners performed or resolved from cache).
pub fn timings() -> Vec<RunTiming> {
    lock_unpoisoned(timing_log()).clone()
}

/// Number of results currently in the cross-figure cache.
pub fn cache_len() -> usize {
    lock_unpoisoned(cache()).map.len()
}

/// Snapshot of the process-wide worker-schedule log (one [`JobTiming`]
/// per job the cached runners executed or resolved). Feed it to
/// [`crate::trace_export::replay_schedule`] to render the runner tracks
/// of a Chrome trace.
pub fn schedule() -> Vec<JobTiming> {
    lock_unpoisoned(schedule_log()).clone()
}

/// The source revision to tag throughput snapshots with: the
/// `SCC_GIT_REV` environment variable when set (CI pins the exact value),
/// otherwise `git rev-parse --short=12 HEAD`, otherwise `"unknown"`
/// (tarball builds without git).
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("SCC_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Writes the throughput log as JSON (see
/// [`crate::report::throughput_json`]) to `path`, creating parent
/// directories as needed and tagging the snapshot with the schema
/// version and [`git_rev`]. Returns the rendered JSON.
pub fn write_throughput_json(path: impl AsRef<Path>) -> std::io::Result<String> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = crate::report::throughput_json(&timings(), &git_rev());
    let mut f = std::fs::File::create(path)?;
    f.write_all(json.as_bytes())?;
    Ok(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_workloads::{workload, Scale};

    #[test]
    fn scc_jobs_is_positive() {
        assert!(scc_jobs() >= 1);
    }

    #[test]
    fn batch_results_are_in_job_order() {
        let scale = Scale::custom(200);
        let ws: Vec<_> =
            ["exchange", "freqmine", "leela"].iter().map(|n| workload(n, scale).unwrap()).collect();
        let jobs: Vec<Job> = ws
            .iter()
            .map(|w| Job::new(w, &SimOptions::new(OptLevel::Baseline)))
            .collect();
        let rs = Runner::with_jobs(3).run(&jobs);
        assert_eq!(rs.len(), 3);
        for (w, r) in ws.iter().zip(&rs) {
            assert_eq!(r.workload, w.name);
        }
    }

    #[test]
    fn duplicate_jobs_in_one_batch_share_a_simulation() {
        let scale = Scale::custom(210);
        let w = workload("exchange", scale).unwrap();
        let opts = SimOptions::new(OptLevel::Baseline);
        let jobs = vec![Job::new(&w, &opts), Job::new(&w, &opts)];
        let rs = Runner::serial_uncached().run(&jobs);
        assert_eq!(rs[0].stats, rs[1].stats);
        assert!(Arc::ptr_eq(&rs[0], &rs[1]), "one simulation serves both slots");
    }

    #[test]
    fn cached_results_match_fresh_runs_exactly() {
        let scale = Scale::custom(220);
        let w = workload("freqmine", scale).unwrap();
        let opts = SimOptions::new(OptLevel::Full);
        let runner = Runner::with_jobs(2);
        let first = runner.run(&[Job::new(&w, &opts)]);
        let second = runner.run(&[Job::new(&w, &opts)]);
        assert!(Arc::ptr_eq(&first[0], &second[0]), "second run must be a cache hit");
        let fresh = crate::run_workload(&w, &opts);
        assert_eq!(first[0].stats, fresh.stats);
        assert_eq!(first[0].snapshot, fresh.snapshot);
        assert_eq!(first[0].energy, fresh.energy);
    }

    #[test]
    fn parallel_equals_serial() {
        let scale = Scale::custom(230);
        let ws: Vec<_> = ["exchange", "gcc", "lbm", "vips"]
            .iter()
            .map(|n| workload(n, scale).unwrap())
            .collect();
        fn build(ws: &[Workload]) -> Vec<Job<'_>> {
            ws.iter()
                .flat_map(|w| {
                    [OptLevel::Baseline, OptLevel::Full]
                        .into_iter()
                        .map(move |l| Job::new(w, &SimOptions::new(l)))
                })
                .collect()
        }
        let serial = Runner::serial_uncached().run(&build(&ws));
        let parallel = Runner::serial_uncached().run(&build(&ws)); // uncached: fresh again
        let wide = Runner::with_jobs(4).run(&build(&ws));
        for ((a, b), c) in serial.iter().zip(&parallel).zip(&wide) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.stats, c.stats);
            assert_eq!(a.snapshot, c.snapshot);
        }
    }

    #[test]
    fn job_keys_are_explicit_and_distinct() {
        let scale = Scale::custom(250);
        let w = workload("exchange", scale).unwrap();
        let opts = SimOptions::new(OptLevel::Baseline);
        let a = Job::new(&w, &opts);
        let b = Job::new(&w, &opts);
        assert_eq!(a.key(), b.key(), "identical jobs share a key");
        let mut c = Job::new(&w, &opts);
        c.config.core.rob_entries = 16;
        assert_ne!(a.key(), c.key(), "a config edit must change the cache key");
        let mut d = Job::new(&w, &opts);
        d.max_cycles = 123;
        assert_ne!(a.key(), d.key(), "the cycle budget is part of the key");
    }

    /// The canonical key encoding must not drift: the in-memory cache,
    /// the persistent store, and the `scc-route` hash ring all identify
    /// results by this exact string. If this test fails, the encoding
    /// changed — that invalidates every `scc-store` record and remaps
    /// every job across shards, so it must be a deliberate decision:
    /// update this golden string *and* bump `persist::SCHEMA_VERSION`
    /// in the same change.
    #[test]
    fn key_encoding_is_stable() {
        let opts = SimOptions::new(OptLevel::Full);
        let got = job_key("freqmine", 800, opts.level, opts.max_cycles, &opts.to_pipeline_config());
        let want = "freqmine|iters=800|full-scc|max=400000000|\
                    core:6,5,6,8,352,140,160,4,2,1,2,5,12,3,18,4,5,true;\
                    l1i:32768,8,64,lru;l1d:49152,12,64,lru;l2:524288,8,64,lru;\
                    l3:8388608,16,64,rand;memlat:5,14,42,200;\
                    fe:scc;unopt:24,8,6,3,8,28;opt:24,4,6,3,8,3;\
                    opts:true,true,true,true,true,true,true,false;scc:5,4,2,2,18,1,none,6;\
                    bp:tage;vp:eves;fuw:64;vpf:none;ff:true";
        assert_eq!(got, want, "canonical job-key encoding drifted");

        // The baseline frontend serializes through a different arm;
        // pin it too so both shapes of the key are covered.
        let base = SimOptions::new(OptLevel::Baseline);
        let got = job_key("mcf", 1000, base.level, base.max_cycles, &base.to_pipeline_config());
        let want = "mcf|iters=1000|baseline|max=400000000|\
                    core:6,5,6,8,352,140,160,4,2,1,2,5,12,3,18,4,5,true;\
                    l1i:32768,8,64,lru;l1d:49152,12,64,lru;l2:524288,8,64,lru;\
                    l3:8388608,16,64,rand;memlat:5,14,42,200;\
                    fe:baseline;uc:48,8,6,3,8,28;bp:tage;vp:eves;fuw:64;vpf:none;ff:true";
        assert_eq!(got, want, "canonical job-key encoding drifted (baseline frontend)");

        // Trace-ingest jobs use the same canonical encoding with a
        // digest-derived name; pin that shape too so ring placement and
        // store records for `run-trace` jobs stay stable.
        let opts = SimOptions::new(OptLevel::Full);
        let name = trace_workload_name(0x00ab_cdef_0123_4567);
        let got = job_key(&name, 1, opts.level, opts.max_cycles, &opts.to_pipeline_config());
        let want = "trace:00abcdef01234567|iters=1|full-scc|max=400000000|\
                    core:6,5,6,8,352,140,160,4,2,1,2,5,12,3,18,4,5,true;\
                    l1i:32768,8,64,lru;l1d:49152,12,64,lru;l2:524288,8,64,lru;\
                    l3:8388608,16,64,rand;memlat:5,14,42,200;\
                    fe:scc;unopt:24,8,6,3,8,28;opt:24,4,6,3,8,3;\
                    opts:true,true,true,true,true,true,true,false;scc:5,4,2,2,18,1,none,6;\
                    bp:tage;vp:eves;fuw:64;vpf:none;ff:true";
        assert_eq!(got, want, "canonical trace-job key encoding drifted");
        assert!(is_trace_workload(&name));
        assert!(!is_trace_workload("freqmine"));

        // And `Job::key` must be exactly the free function over the
        // job's own fields — no second serialization path.
        let w = workload("freqmine", Scale::custom(800)).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));
        assert_eq!(
            job.key(),
            job_key("freqmine", 800, job.level, job.max_cycles, &job.config)
        );
    }

    #[test]
    fn budget_exhaustion_propagates_as_error_not_pool_abort() {
        let scale = Scale::custom(260);
        let ws: Vec<_> =
            ["exchange", "freqmine"].iter().map(|n| workload(n, scale).unwrap()).collect();
        let opts = SimOptions::new(OptLevel::Baseline);
        let mut bad = Job::new(&ws[0], &opts);
        bad.max_cycles = 2; // cannot halt in two cycles
        let good = Job::new(&ws[1], &opts);
        let runner = Runner::with_jobs(2);
        let err = runner.try_run(&[bad, good.clone()]).unwrap_err();
        match &err {
            JobError::BudgetExhausted { workload, max_cycles, .. } => {
                assert_eq!(workload, "exchange");
                assert_eq!(*max_cycles, 2);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(err.kind(), "budget_exhausted");
        let msg = err.to_string();
        assert!(msg.contains("did not halt within 2 cycles"), "{msg}");
        assert!(msg.contains("core:"), "error must name the config: {msg}");
        // The good job from the poisoned batch still completed and was
        // cached; a retry without the bad job succeeds immediately.
        let again = runner.try_run(&[good]).expect("good job survives the bad batch");
        assert_eq!(again[0].workload, "freqmine");
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(8, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn timings_record_fresh_and_cached_runs() {
        let scale = Scale::custom(240);
        let w = workload("leela", scale).unwrap();
        let opts = SimOptions::new(OptLevel::Baseline);
        let runner = Runner::with_jobs(1);
        runner.run(&[Job::new(&w, &opts)]);
        runner.run(&[Job::new(&w, &opts)]);
        let log = timings();
        let mine: Vec<_> = log
            .iter()
            .filter(|t| t.workload == "leela" && t.uops > 0)
            .collect();
        assert!(mine.iter().any(|t| !t.cached), "fresh run recorded");
        assert!(mine.iter().any(|t| t.cached), "cache hit recorded");
    }

    #[test]
    fn schedule_records_worker_slots_and_windows() {
        let scale = Scale::custom(270);
        let w = workload("vips", scale).unwrap();
        let opts = SimOptions::new(OptLevel::Baseline);
        let runner = Runner::with_jobs(2);
        runner.run(&[Job::new(&w, &opts)]);
        runner.run(&[Job::new(&w, &opts)]); // cache hit
        let log = schedule();
        let mine: Vec<_> = log.iter().filter(|t| t.workload == "vips").collect();
        let fresh = mine.iter().find(|t| !t.cached).expect("fresh run scheduled");
        assert!(fresh.end_us >= fresh.start_us);
        assert_eq!(fresh.level, "baseline");
        let hit = mine.iter().find(|t| t.cached).expect("cache hit scheduled");
        assert_eq!(hit.start_us, hit.end_us, "hits are zero-length spans");
    }

    #[test]
    fn parallel_map_indexed_passes_valid_slots() {
        let items: Vec<u64> = (0..50).collect();
        let slots = parallel_map_indexed(4, &items, |slot, &x| {
            assert!(slot < 4);
            (slot, x)
        });
        assert_eq!(slots.len(), 50);
        for (i, (_, x)) in slots.iter().enumerate() {
            assert_eq!(*x, i as u64, "item order preserved");
        }
    }

    #[test]
    fn runner_new_is_environment_free() {
        // `Runner::new` must not consult SCC_JOBS — only the binary-edge
        // helper does.
        assert_eq!(Runner::new().jobs(), default_jobs());
    }

    fn dummy_result(name: &str) -> Arc<SimResult> {
        Arc::new(SimResult {
            workload: name.to_string(),
            level: OptLevel::Baseline,
            stats: Default::default(),
            energy: Default::default(),
            snapshot: scc_isa::ArchSnapshot {
                regs: [0; scc_isa::NUM_REGS],
                cc: Default::default(),
                mem: Vec::new(),
            },
            halted: true,
        })
    }

    #[test]
    fn result_cache_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), dummy_result("a"));
        c.insert("b".into(), dummy_result("b"));
        assert!(c.get("a").is_some(), "touch `a` so `b` is stalest");
        c.insert("c".into(), dummy_result("c"));
        let s = c.stats();
        assert_eq!((s.len, s.capacity, s.evictions), (2, 2, 1));
        assert!(c.get("b").is_none(), "`b` was least recently used");
        assert!(c.get("a").is_some() && c.get("c").is_some());
        assert_eq!(c.stats().hits, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn result_cache_capacity_zero_disables_residency() {
        let mut c = ResultCache::new(0);
        c.insert("a".into(), dummy_result("a"));
        assert!(c.get("a").is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn result_cache_reinsert_does_not_evict() {
        let mut c = ResultCache::new(2);
        c.insert("a".into(), dummy_result("a"));
        c.insert("b".into(), dummy_result("b"));
        c.insert("a".into(), dummy_result("a"));
        let s = c.stats();
        assert_eq!((s.len, s.evictions), (2, 0), "overwrite needs no room");
    }

    #[test]
    fn global_cache_survives_a_poisoning_panic() {
        // A panicking thread holding the cache lock poisons the mutex; a
        // long-running service must shrug that off, not wedge forever.
        let _ = std::thread::spawn(|| {
            let _guard = cache().lock().unwrap_or_else(|p| p.into_inner());
            panic!("poison the cache mutex");
        })
        .join();
        let _ = cache_len(); // must not panic
        let _ = cache_stats();
        let scale = Scale::custom(280);
        let w = workload("exchange", scale).unwrap();
        let r = Runner::with_jobs(1)
            .try_run(&[Job::new(&w, &SimOptions::new(OptLevel::Baseline))])
            .expect("runner works after a poisoning panic");
        assert_eq!(r[0].workload, "exchange");
    }

    #[test]
    fn resolve_workload_is_fallible() {
        let err = resolve_workload("quantum-doom", Scale::custom(100)).unwrap_err();
        assert_eq!(err.kind(), "unknown_workload");
        assert!(err.to_string().contains("quantum-doom"));
        assert!(resolve_workload("freqmine", Scale::custom(100)).is_ok());
    }

    #[test]
    fn try_run_one_hits_cache_and_records_request_ids() {
        let scale = Scale::custom(290);
        let w = workload("leela", scale).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));
        let runner = Runner::with_jobs(1);
        let first = runner.try_run_one(&job, None, Some("req-1"), false).unwrap();
        assert!(!first.cached);
        let second = runner.try_run_one(&job, None, Some("req-2"), false).unwrap();
        assert!(second.cached, "second identical request is a hit");
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let sched = schedule();
        for id in ["req-1", "req-2"] {
            assert!(
                sched.iter().any(|t| t.request.as_deref() == Some(id)),
                "request {id} attributed in the schedule log"
            );
        }
        // And batch jobs remain unattributed.
        assert!(sched.iter().any(|t| t.request.is_none()));
    }

    #[test]
    fn keyed_probe_resolves_without_the_workload_and_counts_once() {
        let scale = Scale::custom(291);
        let w = workload("leela", scale).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));
        let runner = Runner::with_jobs(1);
        let key = job.key();
        assert!(runner.try_cached(&key, None).is_none(), "cold key must miss");
        let before = cache_stats();
        let fresh = runner.run_fresh(&job, None, Some("req-f"), false).unwrap();
        assert!(!fresh.cached);
        // The probe resolves by key alone — no Workload in sight — and
        // the hit is counted like any other cached resolution. (Counter
        // asserts are lower bounds: the cache and its stats are
        // process-global and other tests run concurrently.)
        let hit = runner.try_cached(&key, Some("req-k")).unwrap();
        assert!(Arc::ptr_eq(&fresh.result, &hit));
        assert!(cache_stats().hits > before.hits);
        assert!(schedule().iter().any(|t| t.request.as_deref() == Some("req-k") && t.cached));
    }

    #[test]
    fn try_run_one_deadline_cancels_without_polluting_the_cache() {
        let scale = Scale::custom(300);
        let w = workload("gcc", scale).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));
        let runner = Runner::with_jobs(1);
        // An already-expired deadline cancels before the first cycle.
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let err = runner.try_run_one(&job, Some(past), Some("req-dead"), false).unwrap_err();
        match &err {
            JobError::Cancelled { workload, cycles_run, .. } => {
                assert_eq!(workload, "gcc");
                assert_eq!(*cycles_run, 0);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(err.kind(), "deadline_exceeded");
        // The cancelled run left nothing behind: the retry is fresh.
        let ok = runner.try_run_one(&job, None, Some("req-retry"), false).unwrap();
        assert!(!ok.cached, "a cancelled run must not enter the cache");
        assert!(ok.result.halted);
    }

    /// A unique, initially-absent store directory. Tests here use
    /// *uncached* runners with a store attached, so the process-global
    /// LRU (shared with every other test in this binary) is never
    /// touched and the store tier is the only cache in play.
    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("scc-runner-store-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_tier_serves_results_across_a_restart_byte_identically() {
        let dir = temp_store_dir("restart");
        let w = workload("exchange", Scale::custom(320)).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));

        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-test").unwrap();
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let first = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(!first.cached, "empty store: the first run simulates");
        let second = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(second.cached, "second run is served from the persistent tier");
        assert_eq!(first.result.stats, second.result.stats);
        assert_eq!(first.result.snapshot, second.result.snapshot);
        assert_eq!(
            persist::encode_result(&first.result),
            persist::encode_result(&second.result),
            "the round trip through disk is byte-identical"
        );
        let metric = |name: &str| {
            tier.metrics()
                .into_iter()
                .find(|m| m.name == name)
                .map(|m| match m.value {
                    MetricValue::Counter(v) => v,
                    _ => panic!("store metrics are counters"),
                })
                .unwrap_or_else(|| panic!("metric {name} missing"))
        };
        assert_eq!(metric("runner.store.writes"), 1);
        assert_eq!(metric("runner.store.hits"), 1);
        assert_eq!(metric("runner.store.misses"), 1);
        assert_eq!(metric("runner.store.decode_rejects"), 0);
        let events = tier.trace_events();
        assert!(matches!(events[0], Event::StoreOp { op: "recover", .. }));
        for op in ["miss", "write", "hit"] {
            assert!(
                events.iter().any(|e| matches!(e, Event::StoreOp { op: o, .. } if *o == op)),
                "expected a {op} trace event"
            );
        }
        tier.flush().unwrap();
        drop(runner);
        drop(tier);

        // Restart: a fresh tier over the same directory recovers the
        // record and serves it without simulating.
        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-test").unwrap();
        assert_eq!(tier.recovery().records_indexed, 1);
        assert_eq!(tier.recovery().invalidated_segments(), 0);
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let warm = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(warm.cached, "results survive a restart");
        assert_eq!(warm.result.stats, first.result.stats);
        assert_eq!(warm.result.snapshot, first.result.snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_tier_version_bump_invalidates_every_warm_hit() {
        let dir = temp_store_dir("version");
        let w = workload("freqmine", Scale::custom(330)).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Baseline));

        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-a").unwrap();
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        runner.try_run_one(&job, None, None, false).unwrap();
        tier.flush().unwrap();
        drop(runner);
        drop(tier);

        // A different engine revision refuses the whole segment: the
        // reopened store is empty and the run simulates fresh.
        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-b").unwrap();
        assert!(tier.recovery().version_mismatch_segments >= 1);
        assert_eq!(tier.recovery().records_indexed, 0);
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let rerun = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(!rerun.cached, "a stale engine revision must not serve warm hits");
        tier.flush().unwrap();
        drop(runner);
        drop(tier);

        // Same story for a schema (codec) bump.
        let tier =
            StoreTier::open_with(&dir, persist::SCHEMA_VERSION + 1, "rev-b").unwrap();
        assert!(tier.recovery().version_mismatch_segments >= 1);
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let rerun = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(!rerun.cached, "a schema bump must not serve warm hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_tier_batch_runs_write_through_and_read_through() {
        let dir = temp_store_dir("batch");
        let scale = Scale::custom(340);
        let ws: Vec<_> =
            ["exchange", "leela"].iter().map(|n| workload(n, scale).unwrap()).collect();
        let jobs: Vec<Job> =
            ws.iter().map(|w| Job::new(w, &SimOptions::new(OptLevel::Baseline))).collect();

        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-test").unwrap();
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let cold = runner.run(&jobs);
        assert_eq!(tier.store_stats().puts, 2, "both batch results written through");
        drop(runner);
        drop(tier);

        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-test").unwrap();
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let warm = runner.run(&jobs);
        assert_eq!(tier.store_stats().puts, 0, "warm batch simulates nothing");
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.snapshot, b.snapshot);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_tier_degrades_to_miss_on_undecodable_values() {
        let dir = temp_store_dir("reject");
        // Plant a value that passes the store's CRC but is not a result
        // encoding, under a key the runner will ask for.
        let w = workload("vips", Scale::custom(350)).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Baseline));
        let key = job.key();
        {
            let mut raw = Store::open(
                &dir,
                StoreConfig::new(persist::SCHEMA_VERSION, "rev-test"),
            )
            .unwrap();
            raw.put(&key, b"not a simresult").unwrap();
            raw.sync().unwrap();
        }
        let tier = StoreTier::open_with(&dir, persist::SCHEMA_VERSION, "rev-test").unwrap();
        let runner = Runner::serial_uncached().with_store(Arc::clone(&tier));
        let r = runner.try_run_one(&job, None, None, false).unwrap();
        assert!(!r.cached, "an undecodable value is a miss, not data");
        assert!(r.result.halted);
        let rejects = tier
            .metrics()
            .into_iter()
            .find(|m| m.name == "runner.store.decode_rejects")
            .unwrap();
        assert_eq!(rejects.value, MetricValue::Counter(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_run_one_audit_is_fresh_and_returns_jsonl() {
        let scale = Scale::custom(310);
        let w = workload("freqmine", scale).unwrap();
        let job = Job::new(&w, &SimOptions::new(OptLevel::Full));
        let runner = Runner::with_jobs(1);
        let plain = runner.try_run_one(&job, None, None, false).unwrap();
        let audited = runner.try_run_one(&job, None, None, true).unwrap();
        assert!(!audited.cached, "audit runs bypass the cache lookup");
        let jsonl = audited.audit_jsonl.expect("audit payload present");
        assert!(!jsonl.is_empty(), "full-scc run produces audit decisions");
        assert_eq!(
            plain.result.stats, audited.result.stats,
            "the audit sink must not perturb the simulation"
        );
    }
}
