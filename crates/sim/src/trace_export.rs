//! Structured-event export: Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`), the flat metrics JSON, and a tiny
//! dependency-free JSON validator used by the smoke tests.
//!
//! The exporter renders each [`Event`] eagerly into its final JSON
//! object, so memory scales with the number of *rendered* events (the
//! high-volume per-uop `Decision` and per-commit `AssumptionValidated`
//! events are deliberately left to the audit log, which aggregates
//! them).
//!
//! Track layout:
//!
//! * process 1 "pipeline" — deterministic, cycle-clocked tracks
//!   (1 cycle rendered as 1 µs): `fetch mix`, `scc unit`, `streams`,
//!   `uop cache`, `squash windows`;
//! * process 2 "runner" — wall-clock job-scheduling spans, one thread
//!   per worker slot (inherently nondeterministic; excluded from the
//!   byte-identity determinism tests).

use crate::runner::JobTiming;
use scc_isa::trace::{Event, Sink};
use scc_isa::Addr;
use scc_pipeline::{MetricValue, PipelineStats};
use std::collections::BTreeSet;
use std::path::Path;

const PID_PIPELINE: u32 = 1;
const PID_RUNNER: u32 = 2;
const TID_FETCH: u32 = 1;
const TID_SCC: u32 = 2;
const TID_STREAMS: u32 = 3;
const TID_CACHE: u32 = 4;
const TID_SQUASH: u32 = 5;

/// The pipeline-process track names, in tid order — the contract the CI
/// trace smoke test greps for.
pub const TRACK_NAMES: [&str; 5] =
    ["fetch mix", "scc unit", "streams", "uop cache", "squash windows"];

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hex(a: Addr) -> String {
    format!("\"{a:#x}\"")
}

fn opt_id(id: Option<u64>) -> String {
    match id {
        Some(id) => id.to_string(),
        None => "null".to_string(),
    }
}

/// A [`Sink`] that renders events into Chrome trace-event JSON.
#[derive(Default)]
pub struct ChromeTraceSink {
    events: Vec<String>,
    named_workers: BTreeSet<usize>,
    named_store: bool,
}

impl ChromeTraceSink {
    /// An empty trace with the process/thread name metadata pre-emitted.
    pub fn new() -> ChromeTraceSink {
        let mut s = ChromeTraceSink {
            events: Vec::new(),
            named_workers: BTreeSet::new(),
            named_store: false,
        };
        s.meta(PID_PIPELINE, 0, "process_name", "pipeline");
        s.meta(PID_RUNNER, 0, "process_name", "runner");
        for (i, name) in TRACK_NAMES.iter().enumerate() {
            s.meta(PID_PIPELINE, i as u32 + 1, "thread_name", name);
        }
        s
    }

    fn meta(&mut self, pid: u32, tid: u32, key: &str, value: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(value)
        ));
    }

    /// An `"X"` complete span on a pipeline track (cycles as µs,
    /// zero-length spans widened to 1 so they stay visible).
    fn span(&mut self, tid: u32, name: &str, ts: u64, dur: u64, args: String) {
        let dur = dur.max(1);
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{PID_PIPELINE},\"tid\":{tid},\"name\":\"{}\",\
             \"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    /// An `"i"` instant on a pipeline track.
    fn instant(&mut self, tid: u32, name: &str, ts: u64, args: String) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"pid\":{PID_PIPELINE},\"tid\":{tid},\"name\":\"{}\",\
             \"ts\":{ts},\"s\":\"t\",\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn worker_track(&mut self, worker: usize) -> u32 {
        let tid = worker as u32 + 1;
        if self.named_workers.insert(worker) {
            self.meta(PID_RUNNER, tid, "thread_name", &format!("worker {worker}"));
        }
        tid
    }

    /// The runner process's store-tier track, named lazily so traces
    /// without store activity keep their existing layout.
    fn store_track(&mut self) -> u32 {
        const TID_STORE: u32 = 999;
        if !self.named_store {
            self.named_store = true;
            self.meta(PID_RUNNER, TID_STORE, "thread_name", "store tier");
        }
        TID_STORE
    }

    /// Number of rendered trace events (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when only metadata has been rendered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The complete trace as a Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 != self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Writes the trace to `path`, creating parent directories. Returns
    /// the rendered JSON.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<String> {
        let json = self.to_json();
        write_creating_dirs(path.as_ref(), &json)?;
        Ok(json)
    }
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::FetchInterval { start_cycle, end_cycle, icache, unopt, opt } => {
                self.span(
                    TID_FETCH,
                    "fetch",
                    *start_cycle,
                    end_cycle - start_cycle,
                    format!("\"icache\":{icache},\"unopt\":{unopt},\"opt\":{opt}"),
                );
                // A stacked counter track of the same mix.
                self.events.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_PIPELINE},\"tid\":{TID_FETCH},\
                     \"name\":\"uops by source\",\"ts\":{start_cycle},\
                     \"args\":{{\"icache\":{icache},\"unopt\":{unopt},\"opt\":{opt}}}}}"
                ));
            }
            Event::CompactionPass { start_cycle, end_cycle, region, entry, outcome, shrinkage, stream_id } => {
                self.span(
                    TID_SCC,
                    outcome,
                    *start_cycle,
                    end_cycle.saturating_sub(*start_cycle),
                    format!(
                        "\"region\":{},\"entry\":{},\"shrinkage\":{shrinkage},\"stream\":{}",
                        hex(*region),
                        hex(*entry),
                        opt_id(*stream_id)
                    ),
                );
            }
            // High-volume audit-grade events: the audit log, not the
            // trace, is their serialized form.
            Event::Decision { .. } | Event::AssumptionValidated { .. } => {}
            Event::StreamActivated { cycle, stream_id, pc, len } => {
                self.instant(
                    TID_STREAMS,
                    "activate",
                    *cycle,
                    format!("\"stream\":{stream_id},\"pc\":{},\"len\":{len}", hex(*pc)),
                );
            }
            Event::StreamInserted { cycle, stream_id, region, shrinkage, invariants } => {
                self.instant(
                    TID_STREAMS,
                    "insert",
                    *cycle,
                    format!(
                        "\"stream\":{stream_id},\"region\":{},\"shrinkage\":{shrinkage},\
                         \"invariants\":{invariants}",
                        hex(*region)
                    ),
                );
            }
            Event::StreamEvicted { cycle, stream_id, region, reason } => {
                self.instant(
                    TID_STREAMS,
                    "evict",
                    *cycle,
                    format!(
                        "\"stream\":{stream_id},\"region\":{},\"reason\":\"{reason}\"",
                        hex(*region)
                    ),
                );
            }
            Event::RegionFilled { cycle, region, uops } => {
                self.instant(
                    TID_CACHE,
                    "fill",
                    *cycle,
                    format!("\"region\":{},\"uops\":{uops}", hex(*region)),
                );
            }
            Event::RegionEvicted { cycle, region } => {
                self.instant(TID_CACHE, "evict", *cycle, format!("\"region\":{}", hex(*region)));
            }
            Event::SquashWindow { cycle, resume_cycle, cause, new_pc, flushed, stream_id } => {
                self.span(
                    TID_SQUASH,
                    cause,
                    *cycle,
                    resume_cycle.saturating_sub(*cycle),
                    format!(
                        "\"new_pc\":{},\"flushed\":{flushed},\"stream\":{}",
                        hex(*new_pc),
                        opt_id(*stream_id)
                    ),
                );
            }
            Event::AssumptionFailed { cycle, stream_id, invariant, kind, pc } => {
                self.instant(
                    TID_SQUASH,
                    "assumption-failed",
                    *cycle,
                    format!(
                        "\"kind\":\"{kind}\",\"stream\":{stream_id},\
                         \"invariant\":{invariant},\"pc\":{}",
                        hex(*pc)
                    ),
                );
            }
            Event::JobStarted { worker, ts_us, workload, level } => {
                let tid = self.worker_track(*worker);
                self.events.push(format!(
                    "{{\"ph\":\"B\",\"pid\":{PID_RUNNER},\"tid\":{tid},\"name\":\"{}\",\
                     \"ts\":{ts_us},\"args\":{{\"level\":\"{level}\"}}}}",
                    esc(workload)
                ));
            }
            Event::JobFinished { worker, ts_us, workload, level, cached } => {
                let tid = self.worker_track(*worker);
                self.events.push(format!(
                    "{{\"ph\":\"E\",\"pid\":{PID_RUNNER},\"tid\":{tid},\"name\":\"{}\",\
                     \"ts\":{ts_us},\"args\":{{\"level\":\"{level}\",\"cached\":{cached}}}}}",
                    esc(workload)
                ));
            }
            Event::StoreOp { ts_us, op, detail, count } => {
                let tid = self.store_track();
                self.events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{PID_RUNNER},\"tid\":{tid},\"name\":\"{}\",\
                     \"ts\":{ts_us},\"s\":\"t\",\"args\":{{\"detail\":\"{}\",\"count\":{count}}}}}",
                    esc(op),
                    esc(detail)
                ));
            }
        }
    }
}

/// Replays the runner's recorded job schedule (see
/// [`crate::runner::schedule`]) into a sink as `JobStarted`/`JobFinished`
/// pairs — how the runner's worker tracks land in an exported trace.
pub fn replay_schedule(sink: &mut dyn Sink, schedule: &[JobTiming]) {
    for t in schedule {
        // Service jobs carry their request ID into the runner track's
        // span name, so a request is findable in the exported trace.
        let name = match &t.request {
            Some(req) => format!("{} [{req}]", t.workload),
            None => t.workload.clone(),
        };
        sink.record(&Event::JobStarted {
            worker: t.worker,
            ts_us: t.start_us,
            workload: name.clone(),
            level: t.level,
        });
        sink.record(&Event::JobFinished {
            worker: t.worker,
            ts_us: t.end_us.max(t.start_us),
            workload: name,
            level: t.level,
            cached: t.cached,
        });
    }
}

/// Replays the store tier's recorded operation log (see
/// [`crate::runner::StoreTier::trace_events`]) into a sink — how
/// persistent-tier activity (recovery, warm hits, write-through) lands
/// on the exported trace's `store tier` track next to the runner's
/// worker tracks.
pub fn replay_store_ops(sink: &mut dyn Sink, ops: &[Event]) {
    for e in ops {
        sink.record(e);
    }
}

/// Renders the full metrics registry of one run as a JSON document:
/// `{"workload": .., "level": .., "metrics": {name: value, ..}}`.
///
/// Counters serialize as integers, gauges as decimal floats (non-finite
/// values, which the registry never produces from a real run, clamp to
/// 0 so the document always parses).
pub fn metrics_json(workload: &str, level: &str, stats: &PipelineStats) -> String {
    let metrics = stats.metrics();
    let mut out = String::with_capacity(metrics.len() * 32);
    out.push_str("{\n");
    out.push_str(&format!("  \"workload\": \"{}\",\n", esc(workload)));
    out.push_str(&format!("  \"level\": \"{}\",\n", esc(level)));
    out.push_str("  \"metrics\": {\n");
    for (i, m) in metrics.iter().enumerate() {
        let value = match m.value {
            MetricValue::Counter(c) => c.to_string(),
            MetricValue::Gauge(g) if g.is_finite() => format!("{g:.6}"),
            MetricValue::Gauge(_) => "0".to_string(),
        };
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {value}{sep}\n", esc(&m.name)));
    }
    out.push_str("  }\n}\n");
    out
}

/// Writes [`metrics_json`] to `path`, creating parent directories.
/// Returns the rendered JSON.
pub fn write_metrics_json(
    path: impl AsRef<Path>,
    workload: &str,
    level: &str,
    stats: &PipelineStats,
) -> std::io::Result<String> {
    let json = metrics_json(workload, level, stats);
    write_creating_dirs(path.as_ref(), &json)?;
    Ok(json)
}

fn write_creating_dirs(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, contents)
}

/// Validates that `s` is one well-formed JSON document (objects, arrays,
/// strings, numbers, booleans, null — no extensions). Returns the byte
/// offset of the first problem on failure. Dependency-free, used by the
/// export tests and the `scc-check` harness to keep the emitted
/// documents honest without a JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) -> Result<(), String> {
    if *i < b.len() && b[*i] == c {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, i))
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, i);
                string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}")),
                }
            }
        }
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("expected a value at byte {i}")),
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    expect(b, i, b'"')?;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            c if c < 0x20 => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("malformed number at byte {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() - *i >= lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {i}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            "{\"a\": [1, 2, {\"b\": \"x\\\"y\"}], \"c\": true}",
            " {\"traceEvents\":[]} ",
        ] {
            assert!(validate_json(good).is_ok(), "{good}");
        }
        for bad in ["", "{", "[1,]", "{\"a\":}", "01x", "{} {}", "\"unterminated"] {
            assert!(validate_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn trace_renders_valid_json_with_all_tracks() {
        let mut sink = ChromeTraceSink::new();
        sink.record(&Event::FetchInterval {
            start_cycle: 0,
            end_cycle: 4096,
            icache: 10,
            unopt: 200,
            opt: 300,
        });
        sink.record(&Event::CompactionPass {
            start_cycle: 50,
            end_cycle: 80,
            region: 0x1000,
            entry: 0x1004,
            outcome: "committed",
            shrinkage: 7,
            stream_id: Some(1),
        });
        sink.record(&Event::StreamActivated { cycle: 90, stream_id: 1, pc: 0x1004, len: 12 });
        sink.record(&Event::StreamInserted {
            cycle: 80,
            stream_id: 1,
            region: 0x1000,
            shrinkage: 7,
            invariants: 2,
        });
        sink.record(&Event::RegionFilled { cycle: 10, region: 0x1000, uops: 9 });
        sink.record(&Event::SquashWindow {
            cycle: 120,
            resume_cycle: 134,
            cause: "scc-data",
            new_pc: 0x1008,
            flushed: 44,
            stream_id: Some(1),
        });
        sink.record(&Event::AssumptionFailed {
            cycle: 120,
            stream_id: 1,
            invariant: 0,
            kind: "data",
            pc: 0x1004,
        });
        sink.record(&Event::JobStarted {
            worker: 0,
            ts_us: 5,
            workload: "freqmine".into(),
            level: "full-scc",
        });
        sink.record(&Event::JobFinished {
            worker: 0,
            ts_us: 900,
            workload: "freqmine".into(),
            level: "full-scc",
            cached: false,
        });
        let json = sink.to_json();
        validate_json(&json).expect("trace must be valid JSON");
        for name in TRACK_NAMES {
            assert!(json.contains(name), "missing track {name}:\n{json}");
        }
        assert!(json.contains("worker 0"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn audit_volume_events_are_not_rendered() {
        let mut sink = ChromeTraceSink::new();
        let before = sink.len();
        sink.record(&Event::AssumptionValidated {
            cycle: 1,
            stream_id: 0,
            invariant: 0,
            kind: "data",
        });
        sink.record(&Event::Decision {
            region: 0x1000,
            stream_id: None,
            decision: scc_isa::trace::UopDecision {
                pc: 0x1000,
                slot: 0,
                op: "add".into(),
                action: scc_isa::trace::Transformation::Kept,
            },
        });
        assert_eq!(sink.len(), before, "per-uop events belong to the audit log");
    }

    #[test]
    fn metrics_json_is_valid_and_complete() {
        let stats = PipelineStats { cycles: 100, committed_uops: 250, ..Default::default() };
        let json = metrics_json("freqmine", "baseline", &stats);
        validate_json(&json).expect("metrics must be valid JSON");
        for needle in
            ["\"workload\": \"freqmine\"", "\"cycles\": 100", "\"ipc\": 2.5", "l1i.hits", "opt.inserts"]
        {
            assert!(json.contains(needle), "missing {needle}:\n{json}");
        }
        // Every registry entry appears exactly once.
        for m in stats.metrics() {
            assert_eq!(json.matches(&format!("\"{}\":", m.name)).count(), 1, "{}", m.name);
        }
    }

    #[test]
    fn store_ops_render_on_their_own_runner_track() {
        let mut sink = ChromeTraceSink::new();
        let ops = vec![
            Event::StoreOp {
                ts_us: 1,
                op: "recover",
                detail: "/tmp/store".into(),
                count: 12,
            },
            Event::StoreOp {
                ts_us: 2,
                op: "hit",
                detail: "freqmine|full-scc".into(),
                count: 1,
            },
        ];
        replay_store_ops(&mut sink, &ops);
        let json = sink.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("store tier"), "store track named:\n{json}");
        assert!(json.contains("\"name\":\"recover\""));
        assert!(json.contains("\"count\":12"));
        assert_eq!(json.matches("store tier").count(), 1, "track named once");
    }

    #[test]
    fn schedule_replay_produces_balanced_spans() {
        let mut sink = ChromeTraceSink::new();
        let schedule = vec![
            JobTiming {
                worker: 2,
                start_us: 10,
                end_us: 40,
                workload: "leela".into(),
                level: "baseline",
                cached: false,
                request: None,
            },
            JobTiming {
                worker: 0,
                start_us: 12,
                end_us: 12,
                workload: "leela".into(),
                level: "baseline",
                cached: true,
                request: Some("req-42".into()),
            },
        ];
        replay_schedule(&mut sink, &schedule);
        let json = sink.to_json();
        validate_json(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(json.contains("worker 2"));
        assert!(json.contains("\"cached\":true"));
        assert!(json.contains("leela [req-42]"), "request ID lands in the span name");
    }
}
