//! Top-level simulator API: Ice Lake-like configuration (Table I), the
//! appendix's six optimization levels, and the experiment runner used by
//! the examples and the figure-regeneration benches.
//!
//! # Example
//!
//! ```
//! use scc_sim::{run_workload, OptLevel, SimOptions};
//! use scc_workloads::{workload, Scale};
//!
//! let w = workload("freqmine", Scale::custom(800)).expect("known workload");
//! let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
//! let scc = run_workload(&w, &SimOptions::new(OptLevel::Full));
//! assert!(scc.stats.committed_uops < base.stats.committed_uops);
//! assert_eq!(scc.snapshot, base.snapshot, "SCC is architecturally invisible");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
pub mod cli;
pub mod persist;
pub mod report;
pub mod runner;
pub mod simpoint;
pub mod trace_export;

use scc_core::{OptFlags, SccConfig};
use scc_energy::{EnergyBreakdown, EnergyEvents, EnergyModel};
use scc_isa::trace::SharedSink;
use scc_isa::ArchSnapshot;
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig, PipelineStats, RunOutcome};
use scc_predictors::{BranchPredictorKind, ValuePredictorKind};
use scc_uopcache::UopCacheConfig;
use scc_workloads::Workload;

pub use build::{ConfigError, Sim, SimBuilder, SimError};
pub use runner::{
    cache_len, cache_metrics, cache_stats, default_jobs, parallel_map, parallel_map_indexed,
    resolve_workload, scc_jobs, set_cache_capacity, CacheStats, Job, JobError, JobTiming, RunOne,
    Runner, StoreTier, DEFAULT_CACHE_CAPACITY,
};

/// The appendix's six experiment levels, cumulative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// (1) Baseline: unpartitioned 48-set micro-op cache, no SCC.
    Baseline,
    /// (2) Partitioned baseline: the SCC cache split, all optimizations
    /// off.
    PartitionedBaseline,
    /// (3) SCC with simple move elimination.
    MoveElim,
    /// (4) + constant propagation, constant folding, data invariants.
    FoldProp,
    /// (5) + branch folding.
    BranchFold,
    /// (6) Full speculative code compaction.
    Full,
}

impl OptLevel {
    /// All six levels in the appendix's order.
    pub fn all() -> [OptLevel; 6] {
        [
            OptLevel::Baseline,
            OptLevel::PartitionedBaseline,
            OptLevel::MoveElim,
            OptLevel::FoldProp,
            OptLevel::BranchFold,
            OptLevel::Full,
        ]
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::PartitionedBaseline => "partitioned",
            OptLevel::MoveElim => "move-elim",
            OptLevel::FoldProp => "fold+prop",
            OptLevel::BranchFold => "branch-fold",
            OptLevel::Full => "full-scc",
        }
    }

    /// The SCC optimization flags at this level (`None` for the
    /// unpartitioned baseline).
    pub fn flags(self) -> Option<OptFlags> {
        match self {
            OptLevel::Baseline => None,
            OptLevel::PartitionedBaseline => Some(OptFlags::none()),
            OptLevel::MoveElim => Some(OptFlags::move_elim_only()),
            OptLevel::FoldProp => Some(OptFlags::fold_prop()),
            OptLevel::BranchFold => Some(OptFlags::branch_fold()),
            OptLevel::Full => Some(OptFlags::full()),
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// All knobs of one experiment.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Optimization level.
    pub level: OptLevel,
    /// Value predictor (`--lvpredType`; Figure 9's axis).
    pub value_predictor: ValuePredictorKind,
    /// Branch direction predictor.
    pub branch_predictor: BranchPredictorKind,
    /// Sets given to the optimized partition out of the baseline's 48
    /// (Figure 10 sweeps 12/24/36; the appendix default is 24).
    pub opt_partition_sets: usize,
    /// Constant-width cap in bits (Figure 11 sweeps 8/16/32; `None` =
    /// unrestricted).
    pub max_constant_width: Option<u32>,
    /// Classic value-prediction forwarding threshold (the paper's
    /// baseline uses 15; `None` disables — see the `ablations` bench for
    /// its measured effect).
    pub vp_forwarding: Option<u8>,
    /// Simulation cycle budget (safety net; workloads halt well before).
    pub max_cycles: u64,
    /// Event-driven stall fast-forward (host-speed knob only — simulated
    /// behavior and all observable output are byte-identical either way;
    /// see [`PipelineConfig::fast_forward`]). The `full+percycle` fuzz
    /// ablation and the `fast_forward_identity` tests run with it off.
    pub fast_forward: bool,
}

impl SimOptions {
    /// Paper-default options at the given level: EVES, TAGE-lite, 24/24
    /// partition split, unrestricted constants.
    pub fn new(level: OptLevel) -> SimOptions {
        SimOptions {
            level,
            value_predictor: ValuePredictorKind::Eves,
            branch_predictor: BranchPredictorKind::TageLite,
            opt_partition_sets: 24,
            max_constant_width: None,
            vp_forwarding: None,
            max_cycles: build::DEFAULT_MAX_CYCLES,
            fast_forward: true,
        }
    }

    /// The pipeline configuration these options describe.
    pub fn to_pipeline_config(&self) -> PipelineConfig {
        let frontend = match self.level.flags() {
            None => FrontendMode::baseline(),
            Some(flags) => {
                let mut scc = SccConfig::with_opts(flags);
                scc.max_constant_width = self.max_constant_width;
                let opt_sets = self.opt_partition_sets.clamp(4, 44);
                FrontendMode::Scc {
                    unopt: UopCacheConfig::unopt_partition(48 - opt_sets),
                    opt: UopCacheConfig::opt_partition(opt_sets),
                    scc,
                }
            }
        };
        PipelineConfig {
            frontend,
            branch_predictor: self.branch_predictor,
            value_predictor: self.value_predictor,
            vp_forwarding: self.vp_forwarding,
            fast_forward: self.fast_forward,
            ..PipelineConfig::baseline()
        }
    }
}

/// One experiment's results.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Workload name.
    pub workload: String,
    /// Level the run used.
    pub level: OptLevel,
    /// Raw pipeline counters.
    pub stats: PipelineStats,
    /// Energy breakdown from the analytical model.
    pub energy: EnergyBreakdown,
    /// Final architectural state.
    pub snapshot: ArchSnapshot,
    /// True if the run completed (hit `halt`).
    pub halted: bool,
}

impl SimResult {
    /// Execution time in cycles.
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Committed micro-ops.
    pub fn uops(&self) -> u64 {
        self.stats.committed_uops
    }

    /// Total energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy.frontend_pj + self.energy.backend_pj + self.energy.memory_pj
            + self.energy.static_pj
    }
}

/// Maps pipeline counters onto the energy model's event vector.
pub fn energy_events(stats: &PipelineStats) -> EnergyEvents {
    EnergyEvents {
        cycles: stats.cycles,
        icache_accesses: stats.hierarchy.l1i.accesses(),
        uopcache_accesses: stats.uopcache_lookups,
        decoded_macros: stats.decoded_macros,
        bp_lookups: stats.bp_lookups,
        vp_accesses: stats.vp_probes + stats.vp_trains,
        renamed_uops: stats.renamed_uops,
        ghost_installs: stats.committed_ghosts,
        alu_ops: stats.exec_alu,
        muldiv_ops: stats.exec_muldiv,
        fp_ops: stats.exec_fp,
        l1d_accesses: stats.hierarchy.l1d.accesses(),
        l2_accesses: stats.hierarchy.l2.accesses(),
        l3_accesses: stats.hierarchy.l3.accesses(),
        dram_accesses: stats.hierarchy.dram,
        committed_uops: stats.committed_uops,
        scc_alu_ops: stats.scc_alu_ops,
        scc_busy_cycles: stats.scc_busy_cycles,
    }
}

/// Runs one workload under one configuration.
///
/// # Panics
///
/// Panics if the workload exhausts the cycle budget without halting —
/// that is a harness bug, not a measurement.
pub fn run_workload(w: &Workload, opts: &SimOptions) -> SimResult {
    run_workload_inner(w, opts, None)
}

/// [`run_workload`] with a structured observability sink attached to the
/// pipeline (see [`scc_pipeline::Pipeline::attach_sink`]); the sink sees
/// every fetch-mix interval, compaction pass, stream/cache lifecycle
/// event, squash window, and assumption outcome of the run.
///
/// # Panics
///
/// Panics if the workload exhausts the cycle budget without halting.
pub fn run_workload_observed(w: &Workload, opts: &SimOptions, sink: SharedSink) -> SimResult {
    run_workload_inner(w, opts, Some(sink))
}

fn run_workload_inner(w: &Workload, opts: &SimOptions, sink: Option<SharedSink>) -> SimResult {
    let cfg = opts.to_pipeline_config();
    let mut pipe = Pipeline::new(&w.program, cfg);
    if let Some(sink) = sink {
        pipe.attach_sink(sink);
    }
    let res = pipe.run(opts.max_cycles);
    assert_eq!(
        res.outcome,
        RunOutcome::Halted,
        "{} did not halt within {} cycles at {}",
        w.name,
        opts.max_cycles,
        opts.level
    );
    let energy = EnergyModel::icelake().energy(&energy_events(&res.stats));
    SimResult {
        workload: w.name.to_string(),
        level: opts.level,
        stats: res.stats,
        energy,
        snapshot: res.snapshot,
        halted: true,
    }
}

/// Renders Table I (the microarchitectural configuration).
pub fn table1() -> String {
    let core = scc_pipeline::CoreParams::default();
    let hier = scc_memsys::HierarchyConfig::icelake();
    let uc = UopCacheConfig::baseline();
    let mut out = String::new();
    let mut row = |k: &str, v: String| out.push_str(&format!("{k:<28} {v}\n"));
    row("Frequency", "2.4 GHz (modeled)".into());
    row("Fetch width", format!("{} fused uops", core.fetch_width));
    row("Decode width", format!("{}", core.decode_width));
    row("uop cache", format!(
        "{} uops, {}-way, {} sets x {} uops/line",
        uc.capacity_uops(), uc.ways, uc.sets, uc.uops_per_line
    ));
    row("Branch predictor", "TAGE-lite (LTAGE-class) + BTB + RAS + indirect".into());
    row("Value predictor", "EVES (default) / H3VP".into());
    row("IDQ", format!("{} entries", core.idq_entries));
    row("ROB", format!("{} entries", core.rob_entries));
    row("Scheduler", format!("{} entries", core.sched_entries));
    row("Ports", format!(
        "{} ALU, {} load, {} store, {} FP",
        core.alu_ports, core.load_ports, core.store_ports, core.fp_ports
    ));
    row("L1I", format!("{} KB, {}-way, LRU", hier.l1i.size_bytes / 1024, hier.l1i.ways));
    row("L1D", format!("{} KB, {}-way, LRU", hier.l1d.size_bytes / 1024, hier.l1d.ways));
    row("L2", format!("{} KB, {}-way, LRU", hier.l2.size_bytes / 1024, hier.l2.ways));
    row("L3", format!(
        "{} MB, {}-way, random repl.",
        hier.l3.size_bytes / (1024 * 1024),
        hier.l3.ways
    ));
    row("Memory", format!("DDR4-2400-class, {} cycles", hier.dram_latency));
    row("SCC unit", "1 uop/cycle, 18-uop write buffer, 6-entry request queue".into());
    row("SCC confidence threshold", "5 of 15 (baseline VP forwarding: 15)".into());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_workloads::{workload, Scale};

    #[test]
    fn levels_roundtrip() {
        assert_eq!(OptLevel::all().len(), 6);
        assert!(OptLevel::Baseline.flags().is_none());
        assert!(OptLevel::Full.flags().unwrap().control_invariants);
        assert_eq!(OptLevel::Full.to_string(), "full-scc");
    }

    #[test]
    fn options_build_configs() {
        let o = SimOptions::new(OptLevel::Baseline);
        assert!(!o.to_pipeline_config().frontend.has_scc());
        let mut o = SimOptions::new(OptLevel::Full);
        o.opt_partition_sets = 12;
        let cfg = o.to_pipeline_config();
        if let FrontendMode::Scc { unopt, opt, .. } = cfg.frontend {
            assert_eq!(opt.sets, 12);
            assert_eq!(unopt.sets, 36);
        } else {
            panic!("expected SCC frontend");
        }
    }

    #[test]
    fn run_is_deterministic_and_correct() {
        let w = workload("exchange", Scale::custom(500)).unwrap();
        let a = run_workload(&w, &SimOptions::new(OptLevel::Full));
        let b = run_workload(&w, &SimOptions::new(OptLevel::Full));
        assert_eq!(a.stats, b.stats, "simulation must be deterministic");
        assert_eq!(a.snapshot, b.snapshot);
        let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
        assert_eq!(base.snapshot, a.snapshot, "levels agree architecturally");
    }

    #[test]
    fn full_scc_reduces_uops_on_predictable_workload() {
        let w = workload("freqmine", Scale::custom(800)).unwrap();
        let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
        let full = run_workload(&w, &SimOptions::new(OptLevel::Full));
        assert!(full.uops() < base.uops());
        assert!(full.energy_pj() < base.energy_pj(), "energy should drop too");
    }

    #[test]
    fn table1_mentions_key_structures() {
        let t = table1();
        for needle in ["2304 uops", "352 entries", "8 MB", "TAGE", "EVES", "DDR4"] {
            assert!(t.contains(needle), "Table I missing {needle}:\n{t}");
        }
    }

    #[test]
    fn energy_event_mapping_is_complete() {
        let stats = PipelineStats {
            cycles: 10,
            committed_uops: 5,
            exec_alu: 3,
            ..PipelineStats::default()
        };
        let ev = energy_events(&stats);
        assert_eq!(ev.cycles, 10);
        assert_eq!(ev.committed_uops, 5);
        assert_eq!(ev.alu_ops, 3);
    }
}
