//! Parsing for the artifact-compatible `se` command line.
//!
//! Lives in the library (rather than the binary) so flag handling is unit
//! tested; the `se` binary is a thin wrapper.

use scc_predictors::ValuePredictorKind;

/// Parsed `se` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct SeArgs {
    /// Workload name.
    pub workload: String,
    /// Workload scale (base loop iterations).
    pub iters: i64,
    /// `--enable-superoptimization`: run SCC instead of the baseline.
    pub superopt: bool,
    /// `--lvpredType`.
    pub lvpred: ValuePredictorKind,
    /// `--predictionConfidenceThreshold` (defaults: 15 baseline, 5 SCC).
    pub confidence: u8,
    /// `--usingControlTracking`.
    pub control_tracking: bool,
    /// `--usingCCTracking`.
    pub cc_tracking: bool,
    /// `--enableValuePredForwinding` (sic — the artifact's spelling is
    /// accepted too).
    pub vp_forwarding: bool,
    /// `--uopCacheNumSets` (unoptimized partition / baseline cache).
    pub uop_sets: usize,
    /// `--specCacheNumSets` (optimized partition).
    pub spec_sets: usize,
    /// `--specCacheNumWays`.
    pub spec_ways: usize,
    /// `--max-cycles` safety net.
    pub max_cycles: u64,
    /// `--list-workloads`.
    pub list: bool,
    /// `--trace-out`: write a Chrome trace-event JSON of the run here.
    pub trace_out: Option<String>,
    /// `--metrics-out`: write the full metrics registry as JSON here.
    pub metrics_out: Option<String>,
    /// `--audit-out`: write the SCC decision audit log (JSONL) here.
    pub audit_out: Option<String>,
}

impl Default for SeArgs {
    fn default() -> SeArgs {
        // Knob defaults live in `crate::build` (the builder is the single
        // source of truth); this struct only mirrors them for parsing.
        SeArgs {
            workload: crate::build::DEFAULT_WORKLOAD.into(),
            iters: crate::build::DEFAULT_ITERS,
            superopt: false,
            lvpred: ValuePredictorKind::Eves,
            confidence: crate::build::BASELINE_CONFIDENCE,
            control_tracking: true,
            cc_tracking: true,
            vp_forwarding: false,
            uop_sets: crate::build::DEFAULT_UNOPT_SETS,
            spec_sets: crate::build::DEFAULT_OPT_SETS,
            spec_ways: crate::build::default_opt_ways(),
            max_cycles: crate::build::DEFAULT_MAX_CYCLES,
            list: false,
            trace_out: None,
            metrics_out: None,
            audit_out: None,
        }
    }
}

/// Outcome of parsing: arguments, a help request, or an error message.
#[derive(Clone, Debug, PartialEq)]
pub enum SeParse {
    /// Parsed successfully.
    Run(SeArgs),
    /// `--help` was requested.
    Help,
    /// A flag was malformed or unknown.
    Error(String),
}

/// Artifact flags that are accepted but fixed by the model; flags paired
/// with `true` consume a value.
const UNMODELED: &[(&str, bool)] = &[
    ("--caches", false),
    ("--l2cache", false),
    ("--l3cache", false),
    ("--enable-micro-op-cache", false),
    ("--enable-micro-fusion", false),
    ("--forceNoTSO", false),
    ("--enableDynamicThreshold", false),
    ("--lvpLookahead", false),
    ("--predictingArithmetic", true),
    ("--uopCacheNumWays", true),
    ("--uopCacheNumUops", true),
    ("--specCacheNumUops", true),
    ("--cpu-type", true),
    ("--mem-type", true),
    ("--mem-size", true),
    ("--mem-channels", true),
];

/// Parses `se` arguments (excluding `argv[0]`). Notes about accepted but
/// unmodeled flags are appended to `notes`.
pub fn parse_se_args(argv: &[String], notes: &mut Vec<String>) -> SeParse {
    let mut a = SeArgs::default();
    let mut saw_confidence = false;
    let mut it = argv.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        macro_rules! value {
            () => {
                match inline.clone().or_else(|| it.next().cloned()) {
                    Some(v) => v,
                    None => return SeParse::Error(format!("{flag} needs a value")),
                }
            };
        }
        macro_rules! parse_num {
            ($t:ty) => {
                match value!().parse::<$t>() {
                    Ok(v) => v,
                    Err(e) => return SeParse::Error(format!("{flag}: {e}")),
                }
            };
        }
        match flag {
            "--workload" => a.workload = value!(),
            "--iters" => a.iters = parse_num!(i64),
            "--max-cycles" => a.max_cycles = parse_num!(u64),
            "--enable-superoptimization" => a.superopt = true,
            "--enableValuePredForwinding" | "--enableValuePredForwarding" => {
                a.vp_forwarding = true
            }
            "--lvpredType" => {
                a.lvpred = match value!().as_str() {
                    "eves" => ValuePredictorKind::Eves,
                    "h3vp" => ValuePredictorKind::H3vp,
                    "stride" => ValuePredictorKind::Stride,
                    "lvp" | "last-value" => ValuePredictorKind::LastValue,
                    other => return SeParse::Error(format!("unknown --lvpredType {other}")),
                }
            }
            "--predictionConfidenceThreshold" => {
                a.confidence = parse_num!(u8);
                saw_confidence = true;
            }
            "--usingControlTracking" => a.control_tracking = value!() != "0",
            "--usingCCTracking" => a.cc_tracking = value!() != "0",
            "--uopCacheNumSets" => a.uop_sets = parse_num!(usize),
            "--specCacheNumSets" => a.spec_sets = parse_num!(usize),
            "--specCacheNumWays" => a.spec_ways = parse_num!(usize),
            "--list-workloads" => a.list = true,
            "--trace-out" => a.trace_out = Some(value!()),
            "--metrics-out" => a.metrics_out = Some(value!()),
            "--audit-out" => a.audit_out = Some(value!()),
            "--help" | "-h" => return SeParse::Help,
            other => match UNMODELED.iter().find(|(f, _)| *f == other) {
                Some((f, takes_value)) => {
                    if *takes_value && inline.is_none() {
                        let _ = it.next();
                    }
                    notes.push(format!("{f} accepted (behaviour fixed by the model)"));
                }
                None => return SeParse::Error(format!("unknown flag {other}")),
            },
        }
    }
    if a.superopt && !saw_confidence {
        // The appendix's SCC runs use the aggressive threshold.
        a.confidence = 5;
    }
    SeParse::Run(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> SeParse {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_se_args(&argv, &mut Vec::new())
    }

    fn run(args: &[&str]) -> SeArgs {
        match parse(args) {
            SeParse::Run(a) => a,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn appendix_scc_invocation_parses() {
        let a = run(&[
            "--workload", "freqmine", "--enable-superoptimization",
            "--lvpredType=eves", "--usingControlTracking=1", "--usingCCTracking=1",
            "--uopCacheNumSets=24", "--specCacheNumSets=24", "--specCacheNumWays=4",
        ]);
        assert!(a.superopt);
        assert_eq!(a.lvpred, ValuePredictorKind::Eves);
        assert_eq!(a.confidence, 5, "SCC default threshold");
        assert_eq!((a.uop_sets, a.spec_sets, a.spec_ways), (24, 24, 4));
    }

    #[test]
    fn appendix_baseline_invocation_parses() {
        let a = run(&[
            "--lvpredType=eves", "--predictionConfidenceThreshold=15",
            "--enableValuePredForwinding", "--uopCacheNumSets=48",
        ]);
        assert!(!a.superopt);
        assert!(a.vp_forwarding);
        assert_eq!(a.confidence, 15);
        assert_eq!(a.uop_sets, 48);
    }

    #[test]
    fn inline_and_space_separated_values_both_work() {
        let a = run(&["--iters", "1234"]);
        assert_eq!(a.iters, 1234);
        let b = run(&["--iters=1234"]);
        assert_eq!(b.iters, 1234);
    }

    #[test]
    fn unmodeled_flags_are_noted_not_fatal() {
        let argv: Vec<String> =
            ["--caches", "--mem-type", "DDR4_2400_16x4", "--predictingArithmetic", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let mut notes = Vec::new();
        assert!(matches!(parse_se_args(&argv, &mut notes), SeParse::Run(_)));
        assert_eq!(notes.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse(&["--bogus"]), SeParse::Error(_)));
        assert!(matches!(parse(&["--iters"]), SeParse::Error(_)));
        assert!(matches!(parse(&["--iters", "abc"]), SeParse::Error(_)));
        assert!(matches!(parse(&["--lvpredType=quantum"]), SeParse::Error(_)));
        assert_eq!(parse(&["--help"]), SeParse::Help);
    }

    #[test]
    fn explicit_confidence_wins_over_scc_default() {
        let a = run(&["--enable-superoptimization", "--predictionConfidenceThreshold=9"]);
        assert_eq!(a.confidence, 9);
    }

    #[test]
    fn control_and_cc_tracking_toggle() {
        let a = run(&["--usingControlTracking=0", "--usingCCTracking=0"]);
        assert!(!a.control_tracking);
        assert!(!a.cc_tracking);
    }

    #[test]
    fn observability_output_paths_parse() {
        let a = run(&[
            "--trace-out", "t.json", "--metrics-out=m.json", "--audit-out", "a.jsonl",
        ]);
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.audit_out.as_deref(), Some("a.jsonl"));
        let b = run(&[]);
        assert_eq!((b.trace_out, b.metrics_out, b.audit_out), (None, None, None));
        assert!(matches!(parse(&["--trace-out"]), SeParse::Error(_)));
    }
}
