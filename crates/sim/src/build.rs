//! The validated construction path for simulations: [`SimBuilder`] is the
//! single place the simulator's user-facing defaults are stated, and its
//! [`build`](SimBuilder::build) turns a bad knob into a typed
//! [`ConfigError`] instead of a panic deep inside a crate.
//!
//! The artifact CLI ([`crate::cli::SeArgs`]) converts into a builder via
//! `From`, so the `se` binary, the library API, and tests all construct
//! pipelines through one door.
//!
//! ```
//! use scc_sim::{SimBuilder, ConfigError};
//!
//! let sim = SimBuilder::new().workload("freqmine").iters(500).scc(true)
//!     .build().expect("valid configuration");
//! let res = sim.run().expect("halts");
//! assert!(res.halted);
//!
//! let err = SimBuilder::new().workload("quantum-sort").build().unwrap_err();
//! assert!(matches!(err, ConfigError::UnknownWorkload(_)));
//! ```

use crate::{energy_events, OptLevel, SimResult};
use scc_core::{OptFlags, SccConfig};
use scc_energy::EnergyModel;
use scc_isa::trace::SharedSink;
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig, RunOutcome};
use scc_predictors::ValuePredictorKind;
use scc_uopcache::UopCacheConfig;
use scc_workloads::{workload, Scale, Workload};

/// Default workload for `se` and the builder.
pub const DEFAULT_WORKLOAD: &str = "freqmine";
/// Default workload scale (base loop iterations).
pub const DEFAULT_ITERS: i64 = 4000;
/// Default cycle budget — a safety net; every shipped workload halts
/// well before (shared by [`crate::SimOptions`] and the runner's raw-config
/// jobs).
pub const DEFAULT_MAX_CYCLES: u64 = 400_000_000;
/// The paper baseline's value-forwarding confidence threshold. The SCC
/// default (5) is stated once in [`SccConfig`], not repeated here.
pub const BASELINE_CONFIDENCE: u8 = 15;
/// Default unoptimized-partition set count (the paper's best 24/24 split).
pub const DEFAULT_UNOPT_SETS: usize = 24;
/// Default optimized-partition set count.
pub const DEFAULT_OPT_SETS: usize = 24;

/// Default optimized-partition associativity, taken from the uop-cache
/// crate's own partition constructor so the value is stated exactly once.
pub fn default_opt_ways() -> usize {
    UopCacheConfig::opt_partition(DEFAULT_OPT_SETS).ways
}

/// A configuration the builder refuses to turn into a simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The workload name is not in the suite.
    UnknownWorkload(String),
    /// The iteration scale is not positive.
    InvalidIters(i64),
    /// A micro-op cache partition has impossible geometry.
    InvalidGeometry {
        /// Which partition (`"uop cache"` / `"spec cache"`).
        partition: &'static str,
        /// The first problem found (from [`UopCacheConfig::check`]).
        reason: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownWorkload(w) => {
                write!(f, "unknown workload `{w}` (try --list-workloads)")
            }
            ConfigError::InvalidIters(n) => {
                write!(f, "--iters must be positive, got {n}")
            }
            ConfigError::InvalidGeometry { partition, reason } => {
                write!(f, "invalid {partition} geometry: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A run that started but could not produce a measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The workload did not halt within the cycle budget.
    CyclesExhausted {
        /// Workload name.
        workload: String,
        /// The exhausted budget.
        max_cycles: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CyclesExhausted { workload, max_cycles } => {
                write!(f, "workload `{workload}` did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Builder for a validated simulation. Field semantics mirror the
/// artifact's `se` flags; see [`crate::cli::SeArgs`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimBuilder {
    workload: String,
    iters: i64,
    superopt: bool,
    lvpred: ValuePredictorKind,
    /// `None` = level default: [`BASELINE_CONFIDENCE`] for the baseline,
    /// [`SccConfig`]'s threshold under SCC.
    confidence: Option<u8>,
    control_tracking: bool,
    cc_tracking: bool,
    vp_forwarding: bool,
    uop_sets: usize,
    spec_sets: usize,
    spec_ways: usize,
    max_cycles: u64,
}

impl Default for SimBuilder {
    fn default() -> SimBuilder {
        SimBuilder::new()
    }
}

impl SimBuilder {
    /// The paper-default configuration: baseline machine on
    /// [`DEFAULT_WORKLOAD`].
    pub fn new() -> SimBuilder {
        SimBuilder {
            workload: DEFAULT_WORKLOAD.into(),
            iters: DEFAULT_ITERS,
            superopt: false,
            lvpred: ValuePredictorKind::Eves,
            confidence: None,
            control_tracking: true,
            cc_tracking: true,
            vp_forwarding: false,
            uop_sets: DEFAULT_UNOPT_SETS,
            spec_sets: DEFAULT_OPT_SETS,
            spec_ways: default_opt_ways(),
            max_cycles: DEFAULT_MAX_CYCLES,
        }
    }

    /// Selects the workload by name (validated at [`build`](Self::build)).
    pub fn workload(mut self, name: impl Into<String>) -> SimBuilder {
        self.workload = name.into();
        self
    }

    /// Workload scale in base loop iterations (must be positive).
    pub fn iters(mut self, iters: i64) -> SimBuilder {
        self.iters = iters;
        self
    }

    /// Enables or disables speculative code compaction.
    pub fn scc(mut self, enabled: bool) -> SimBuilder {
        self.superopt = enabled;
        self
    }

    /// Value predictor kind.
    pub fn value_predictor(mut self, kind: ValuePredictorKind) -> SimBuilder {
        self.lvpred = kind;
        self
    }

    /// Prediction confidence threshold. Unset, the level default applies
    /// ([`BASELINE_CONFIDENCE`], or [`SccConfig`]'s under SCC).
    pub fn confidence(mut self, threshold: u8) -> SimBuilder {
        self.confidence = Some(threshold);
        self
    }

    /// Toggles control-invariant tracking (SCC only).
    pub fn control_tracking(mut self, enabled: bool) -> SimBuilder {
        self.control_tracking = enabled;
        self
    }

    /// Toggles condition-code tracking (SCC only).
    pub fn cc_tracking(mut self, enabled: bool) -> SimBuilder {
        self.cc_tracking = enabled;
        self
    }

    /// Enables classic value-prediction forwarding at the confidence
    /// threshold.
    pub fn vp_forwarding(mut self, enabled: bool) -> SimBuilder {
        self.vp_forwarding = enabled;
        self
    }

    /// Micro-op cache geometry: unoptimized sets, optimized sets,
    /// optimized ways.
    pub fn partitions(mut self, uop_sets: usize, spec_sets: usize, spec_ways: usize) -> SimBuilder {
        self.uop_sets = uop_sets;
        self.spec_sets = spec_sets;
        self.spec_ways = spec_ways;
        self
    }

    /// Cycle budget safety net.
    pub fn max_cycles(mut self, max_cycles: u64) -> SimBuilder {
        self.max_cycles = max_cycles;
        self
    }

    /// Validates every knob and materializes the workload and pipeline
    /// configuration.
    pub fn build(&self) -> Result<Sim, ConfigError> {
        if self.iters < 1 {
            return Err(ConfigError::InvalidIters(self.iters));
        }
        let w = workload(&self.workload, Scale::custom(self.iters))
            .ok_or_else(|| ConfigError::UnknownWorkload(self.workload.clone()))?;
        let geometry = |partition, cfg: &UopCacheConfig| {
            cfg.check().map_err(|reason| ConfigError::InvalidGeometry { partition, reason })
        };
        let confidence = self.confidence.unwrap_or(if self.superopt {
            SccConfig::full().confidence_threshold
        } else {
            BASELINE_CONFIDENCE
        });
        let (frontend, level) = if self.superopt {
            let mut flags = OptFlags::full();
            flags.control_invariants = self.control_tracking;
            flags.cc_tracking = self.cc_tracking;
            let mut scc = SccConfig::with_opts(flags);
            scc.confidence_threshold = confidence;
            let unopt = UopCacheConfig::unopt_partition(self.uop_sets);
            let opt = UopCacheConfig {
                ways: self.spec_ways,
                ..UopCacheConfig::opt_partition(self.spec_sets)
            };
            geometry("uop cache", &unopt)?;
            geometry("spec cache", &opt)?;
            (FrontendMode::Scc { unopt, opt, scc }, OptLevel::Full)
        } else {
            let uop_cache = UopCacheConfig::unopt_partition(self.uop_sets);
            geometry("uop cache", &uop_cache)?;
            (FrontendMode::Baseline { uop_cache }, OptLevel::Baseline)
        };
        let config = PipelineConfig {
            frontend,
            value_predictor: self.lvpred,
            vp_forwarding: self.vp_forwarding.then_some(confidence),
            ..PipelineConfig::baseline()
        };
        Ok(Sim { workload: w, config, max_cycles: self.max_cycles, level })
    }
}

impl From<&crate::cli::SeArgs> for SimBuilder {
    fn from(a: &crate::cli::SeArgs) -> SimBuilder {
        SimBuilder {
            workload: a.workload.clone(),
            iters: a.iters,
            superopt: a.superopt,
            lvpred: a.lvpred,
            // The parser already resolved the level default.
            confidence: Some(a.confidence),
            control_tracking: a.control_tracking,
            cc_tracking: a.cc_tracking,
            vp_forwarding: a.vp_forwarding,
            uop_sets: a.uop_sets,
            spec_sets: a.spec_sets,
            spec_ways: a.spec_ways,
            max_cycles: a.max_cycles,
        }
    }
}

/// A fully validated simulation, ready to run (repeatedly — each run is
/// independent and deterministic).
#[derive(Clone, Debug)]
pub struct Sim {
    workload: Workload,
    config: PipelineConfig,
    max_cycles: u64,
    level: OptLevel,
}

impl Sim {
    /// The materialized workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The validated pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The level label results will carry.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Runs to completion without observation.
    pub fn run(&self) -> Result<SimResult, SimError> {
        self.run_inner(None)
    }

    /// Runs to completion with a structured observability sink attached
    /// (see [`scc_pipeline::Pipeline::attach_sink`]).
    pub fn run_observed(&self, sink: SharedSink) -> Result<SimResult, SimError> {
        self.run_inner(Some(sink))
    }

    fn run_inner(&self, sink: Option<SharedSink>) -> Result<SimResult, SimError> {
        let mut pipe = Pipeline::new(&self.workload.program, self.config.clone());
        if let Some(sink) = sink {
            pipe.attach_sink(sink);
        }
        let res = pipe.run(self.max_cycles);
        if res.outcome != RunOutcome::Halted {
            return Err(SimError::CyclesExhausted {
                workload: self.workload.name.to_string(),
                max_cycles: self.max_cycles,
            });
        }
        let energy = EnergyModel::icelake().energy(&energy_events(&res.stats));
        Ok(SimResult {
            workload: self.workload.name.to_string(),
            level: self.level,
            stats: res.stats,
            energy,
            snapshot: res.snapshot,
            halted: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::SeArgs;

    /// The pipeline configuration `se` built before the builder existed,
    /// reproduced verbatim — the round-trip oracle.
    fn legacy_config_for(args: &SeArgs) -> PipelineConfig {
        let frontend = if args.superopt {
            let mut flags = OptFlags::full();
            flags.control_invariants = args.control_tracking;
            flags.cc_tracking = args.cc_tracking;
            let mut scc = SccConfig::with_opts(flags);
            scc.confidence_threshold = args.confidence;
            FrontendMode::Scc {
                unopt: UopCacheConfig::unopt_partition(args.uop_sets),
                opt: UopCacheConfig {
                    ways: args.spec_ways,
                    ..UopCacheConfig::opt_partition(args.spec_sets)
                },
                scc,
            }
        } else {
            FrontendMode::Baseline {
                uop_cache: UopCacheConfig::unopt_partition(args.uop_sets.max(1)),
            }
        };
        PipelineConfig {
            frontend,
            value_predictor: args.lvpred,
            vp_forwarding: if args.vp_forwarding { Some(args.confidence) } else { None },
            ..PipelineConfig::baseline()
        }
    }

    #[test]
    fn default_args_round_trip_through_the_builder() {
        let args = SeArgs::default();
        let sim = SimBuilder::from(&args).build().expect("defaults are valid");
        assert_eq!(
            sim.config().content_key(),
            legacy_config_for(&args).content_key(),
            "builder must produce exactly the config se built before it"
        );
        assert_eq!(sim.workload().name, DEFAULT_WORKLOAD);
    }

    #[test]
    fn scc_args_round_trip_through_the_builder() {
        let args = SeArgs {
            superopt: true,
            confidence: 5, // what the parser resolves for SCC
            vp_forwarding: true,
            ..SeArgs::default()
        };
        let sim = SimBuilder::from(&args).build().expect("valid");
        assert_eq!(sim.config().content_key(), legacy_config_for(&args).content_key());
        assert_eq!(sim.level(), OptLevel::Full);
    }

    #[test]
    fn builder_defaults_match_se_defaults() {
        let from_args = SimBuilder::from(&SeArgs::default());
        // SeArgs carries a resolved confidence; the bare builder defers it
        // — both must resolve identically.
        let bare = SimBuilder::new();
        assert_eq!(
            bare.build().unwrap().config().content_key(),
            from_args.build().unwrap().config().content_key()
        );
    }

    #[test]
    fn bad_knobs_become_typed_errors() {
        assert_eq!(
            SimBuilder::new().workload("nope").build().unwrap_err(),
            ConfigError::UnknownWorkload("nope".into())
        );
        assert_eq!(
            SimBuilder::new().iters(0).build().unwrap_err(),
            ConfigError::InvalidIters(0)
        );
        let err = SimBuilder::new().partitions(0, 24, 4).build().unwrap_err();
        assert!(matches!(err, ConfigError::InvalidGeometry { partition: "uop cache", .. }), "{err}");
        let err = SimBuilder::new().scc(true).partitions(24, 24, 0).build().unwrap_err();
        assert!(
            matches!(err, ConfigError::InvalidGeometry { partition: "spec cache", .. }),
            "{err}"
        );
        // Errors render actionable messages.
        let msg = SimBuilder::new().workload("nope").build().unwrap_err().to_string();
        assert!(msg.contains("--list-workloads"), "{msg}");
    }

    #[test]
    fn cycle_exhaustion_is_a_typed_error() {
        let sim = SimBuilder::new().iters(200).max_cycles(10).build().unwrap();
        let err = sim.run().unwrap_err();
        assert_eq!(
            err,
            SimError::CyclesExhausted { workload: DEFAULT_WORKLOAD.into(), max_cycles: 10 }
        );
        assert!(err.to_string().contains("did not halt"));
    }

    #[test]
    fn scc_default_confidence_comes_from_core_config() {
        let sim = SimBuilder::new().iters(200).scc(true).build().unwrap();
        match &sim.config().frontend {
            FrontendMode::Scc { scc, .. } => {
                assert_eq!(scc.confidence_threshold, SccConfig::full().confidence_threshold)
            }
            other => panic!("expected SCC frontend, got {other:?}"),
        }
    }
}
