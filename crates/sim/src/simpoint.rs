//! A self-contained SimPoint implementation.
//!
//! The paper samples each benchmark with "the SimPoint methodology …
//! multiple simpoints that include representative runs of 100 million
//! dynamic instruction intervals" (§VI). SimPoint itself is another
//! substrate this reproduction has to build: execution is divided into
//! fixed-length intervals, each summarized by a basic-block vector (BBV),
//! the BBVs are clustered with k-means, and one representative interval
//! per cluster — weighted by cluster population — stands in for the whole
//! run.
//!
//! Here BBVs count committed micro-ops per 32-byte code region (the same
//! granularity the micro-op cache and SCC use), hashed into a fixed-width
//! dense vector; clustering is classic k-means with farthest-point
//! initialization, deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use scc_sim::simpoint::{choose_simpoints, SimpointConfig};
//! use scc_workloads::{workload, Scale};
//!
//! let w = workload("perlbench", Scale::custom(400)).unwrap();
//! let cfg = SimpointConfig { interval_uops: 5_000, k: 3, ..SimpointConfig::default() };
//! let sp = choose_simpoints(&w.program, &cfg).unwrap();
//! assert!(!sp.points.is_empty());
//! let total: f64 = sp.points.iter().map(|p| p.weight).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

use crate::{energy_events, OptLevel, SimOptions, SimResult};
use scc_energy::EnergyModel;
use scc_isa::{region, ArchSnapshot, Machine, Program, RunError};
use scc_pipeline::Pipeline;
use scc_workloads::Workload;

/// Dimensionality of the hashed BBV projection.
const BBV_DIMS: usize = 64;

/// SimPoint methodology parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimpointConfig {
    /// Interval length in committed micro-ops (the paper uses 100 M on
    /// real benchmarks; synthetic runs use much shorter intervals).
    pub interval_uops: u64,
    /// Number of clusters (maxK in SimPoint terms).
    pub k: usize,
    /// K-means iteration budget.
    pub max_iters: usize,
    /// Deterministic seed for initialization.
    pub seed: u64,
    /// Micro-ops simulated before measurement starts, warming caches,
    /// predictors, and the SCC partitions (checkpoint state is
    /// architectural only). Standard checkpoint-sampling practice.
    pub warmup_uops: u64,
}

impl Default for SimpointConfig {
    fn default() -> SimpointConfig {
        SimpointConfig {
            interval_uops: 100_000,
            k: 4,
            max_iters: 50,
            seed: 42,
            warmup_uops: 50_000,
        }
    }
}

/// One chosen simpoint: a representative interval plus its weight.
#[derive(Clone, Debug)]
pub struct Simpoint {
    /// Index of the interval in execution order.
    pub interval: usize,
    /// Fraction of all intervals its cluster covers (weights sum to 1).
    pub weight: f64,
    /// Architectural checkpoint at the interval's start.
    pub checkpoint: ArchSnapshot,
    /// PC at the interval's start.
    pub start_pc: u64,
}

/// The chosen simpoints for one program.
#[derive(Clone, Debug)]
pub struct Simpoints {
    /// Representative intervals, one per (non-empty) cluster.
    pub points: Vec<Simpoint>,
    /// Total intervals profiled.
    pub intervals: usize,
    /// Interval length used.
    pub interval_uops: u64,
}

/// Errors from simpoint selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimpointError {
    /// The profiling run failed (invalid control flow).
    Profile(RunError),
    /// The program is shorter than one interval.
    TooShort,
}

impl std::fmt::Display for SimpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimpointError::Profile(e) => write!(f, "profiling run failed: {e}"),
            SimpointError::TooShort => write!(f, "program shorter than one interval"),
        }
    }
}

impl std::error::Error for SimpointError {}

fn hash_region(r: u64) -> usize {
    ((r.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 40) as usize % BBV_DIMS
}

fn normalize(v: &mut [f64; BBV_DIMS]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

fn dist2(a: &[f64; BBV_DIMS], b: &[f64; BBV_DIMS]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Per-interval BBVs plus the (snapshot, start uop) checkpoint of each
/// interval.
type ProfileData = (Vec<[f64; BBV_DIMS]>, Vec<(ArchSnapshot, u64)>);

/// Profiles the program into per-interval BBVs and start checkpoints.
fn profile(program: &Program, interval_uops: u64) -> Result<ProfileData, SimpointError> {
    let mut m = Machine::new(program);
    let mut bbvs = Vec::new();
    let mut starts = Vec::new();
    let mut current = [0.0f64; BBV_DIMS];
    let mut interval_start = m.uop_count();
    starts.push((m.snapshot(), m.pc()));
    while !m.is_halted() {
        let step = match m.step_macro(10 * interval_uops.max(1)) {
            Ok(s) => s,
            Err(RunError::OutOfBudget { .. }) => break,
            Err(e) => return Err(SimpointError::Profile(e)),
        };
        current[hash_region(region(step.addr))] += step.uops as f64;
        if m.uop_count() - interval_start >= interval_uops && !m.is_halted() {
            normalize(&mut current);
            bbvs.push(current);
            current = [0.0; BBV_DIMS];
            interval_start = m.uop_count();
            starts.push((m.snapshot(), m.pc()));
        }
    }
    // The final (possibly partial) interval.
    normalize(&mut current);
    bbvs.push(current);
    if bbvs.len() < 2 && m.uop_count() < interval_uops {
        return Err(SimpointError::TooShort);
    }
    Ok((bbvs, starts))
}

/// Deterministic k-means over the BBVs; returns per-interval cluster ids.
fn kmeans(bbvs: &[[f64; BBV_DIMS]], k: usize, max_iters: usize, seed: u64) -> Vec<usize> {
    let k = k.min(bbvs.len()).max(1);
    // Farthest-point initialization from a seeded start.
    let mut centroids: Vec<[f64; BBV_DIMS]> = Vec::with_capacity(k);
    centroids.push(bbvs[(seed as usize) % bbvs.len()]);
    while centroids.len() < k {
        let far = bbvs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da: f64 =
                    centroids.iter().map(|c| dist2(a, c)).fold(f64::MAX, f64::min);
                let db: f64 =
                    centroids.iter().map(|c| dist2(b, c)).fold(f64::MAX, f64::min);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        centroids.push(bbvs[far]);
    }
    let mut assignment = vec![0usize; bbvs.len()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (i, v) in bbvs.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(v, &centroids[a])
                        .partial_cmp(&dist2(v, &centroids[b]))
                        .expect("finite")
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Recompute centroids.
        let mut sums = vec![[0.0f64; BBV_DIMS]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, v) in bbvs.iter().enumerate() {
            counts[assignment[i]] += 1;
            for d in 0..BBV_DIMS {
                sums[assignment[i]][d] += v[d];
            }
        }
        for (c, (sum, n)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *n > 0 {
                for d in 0..BBV_DIMS {
                    c[d] = sum[d] / *n as f64;
                }
            }
        }
    }
    assignment
}

/// Profiles `program` and selects weighted representative intervals.
///
/// # Errors
///
/// Returns [`SimpointError`] if the profiling run fails or the program is
/// shorter than one interval.
pub fn choose_simpoints(
    program: &Program,
    cfg: &SimpointConfig,
) -> Result<Simpoints, SimpointError> {
    let (bbvs, starts) = profile(program, cfg.interval_uops)?;
    let assignment = kmeans(&bbvs, cfg.k, cfg.max_iters, cfg.seed);
    let clusters = assignment.iter().max().map_or(1, |m| m + 1);
    // Centroids for representative selection.
    let mut points = Vec::new();
    for c in 0..clusters {
        let members: Vec<usize> =
            (0..bbvs.len()).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let mut centroid = [0.0f64; BBV_DIMS];
        for &i in &members {
            for d in 0..BBV_DIMS {
                centroid[d] += bbvs[i][d];
            }
        }
        for c in &mut centroid {
            *c /= members.len() as f64;
        }
        let rep = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist2(&bbvs[a], &centroid)
                    .partial_cmp(&dist2(&bbvs[b], &centroid))
                    .expect("finite")
            })
            .expect("non-empty cluster");
        let (checkpoint, start_pc) = starts[rep].clone();
        points.push(Simpoint {
            interval: rep,
            weight: members.len() as f64 / bbvs.len() as f64,
            checkpoint,
            start_pc,
        });
    }
    points.sort_by_key(|p| p.interval);
    Ok(Simpoints { points, intervals: bbvs.len(), interval_uops: cfg.interval_uops })
}

/// A simpoint-estimated result: weighted cycles/energy plus the points
/// used.
#[derive(Clone, Debug)]
pub struct SimpointEstimate {
    /// Weighted cycles-per-interval × interval count (estimated whole-run
    /// cycles).
    pub estimated_cycles: f64,
    /// Weighted committed micro-ops (≈ intervals × interval length).
    pub estimated_uops: f64,
    /// Weighted energy in picojoules.
    pub estimated_energy_pj: f64,
    /// Per-point measured results.
    pub per_point: Vec<(Simpoint, SimResult)>,
}

/// Runs only the simpoints of `workload` under `opts` and extrapolates
/// whole-run cycles/energy — the paper's measurement loop.
///
/// # Errors
///
/// Returns [`SimpointError`] if simpoint selection fails.
pub fn run_simpoints(
    workload: &Workload,
    opts: &SimOptions,
    cfg: &SimpointConfig,
) -> Result<SimpointEstimate, SimpointError> {
    let sp = choose_simpoints(&workload.program, cfg)?;
    let mut estimated_cycles = 0.0;
    let mut estimated_uops = 0.0;
    let mut estimated_energy = 0.0;
    let mut per_point = Vec::new();
    for point in &sp.points {
        let mut pipe = Pipeline::new_at(
            &workload.program,
            opts.to_pipeline_config(),
            &point.checkpoint,
            point.start_pc,
        );
        // Warm the microarchitectural state, then measure the interval as
        // a delta past the warmup point.
        let warm = pipe.run_until_program_uops(cfg.warmup_uops, opts.max_cycles);
        let res = pipe
            .run_until_program_uops(cfg.warmup_uops + cfg.interval_uops, opts.max_cycles);
        let model = EnergyModel::icelake();
        let e_total = model.energy(&energy_events(&res.stats));
        let e_warm = model.energy(&energy_events(&warm.stats));
        let interval_cycles = res.stats.cycles.saturating_sub(warm.stats.cycles);
        let interval_prog =
            res.stats.program_uops.saturating_sub(warm.stats.program_uops);
        let interval_committed =
            res.stats.committed_uops.saturating_sub(warm.stats.committed_uops);
        let interval_energy = (e_total.frontend_pj + e_total.backend_pj + e_total.memory_pj
            + e_total.static_pj)
            - (e_warm.frontend_pj + e_warm.backend_pj + e_warm.memory_pj + e_warm.static_pj);
        let energy = e_total;
        let scale = point.weight * sp.intervals as f64;
        // Extrapolate per-program-uop rates: the measured window may be
        // truncated when warmup + interval run past the program's end,
        // and SCC commits fewer micro-ops per unit of program distance.
        let measured = interval_prog.max(1) as f64;
        let cpi = interval_cycles as f64 / measured;
        let energy_per_uop = (interval_energy / measured).max(0.0);
        estimated_cycles += scale * cpi * cfg.interval_uops as f64;
        estimated_uops +=
            scale * (interval_committed as f64 / measured) * cfg.interval_uops as f64;
        estimated_energy += scale * energy_per_uop * cfg.interval_uops as f64;
        per_point.push((
            point.clone(),
            SimResult {
                workload: workload.name.to_string(),
                level: opts.level,
                stats: res.stats,
                energy,
                snapshot: res.snapshot,
                halted: true,
            },
        ));
    }
    Ok(SimpointEstimate {
        estimated_cycles,
        estimated_uops,
        estimated_energy_pj: estimated_energy,
        per_point,
    })
}

/// Convenience: simpoint-estimated speedup of `opts` over the baseline.
///
/// # Errors
///
/// Returns [`SimpointError`] if simpoint selection fails.
pub fn simpoint_speedup(
    workload: &Workload,
    opts: &SimOptions,
    cfg: &SimpointConfig,
) -> Result<f64, SimpointError> {
    let base = run_simpoints(workload, &SimOptions::new(OptLevel::Baseline), cfg)?;
    let new = run_simpoints(workload, opts, cfg)?;
    Ok(base.estimated_cycles / new.estimated_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_workloads::{workload, Scale};

    #[test]
    fn weights_sum_to_one_and_points_are_ordered() {
        let w = workload("bodytrack", Scale::custom(600)).unwrap();
        let cfg = SimpointConfig { interval_uops: 8_000, k: 4, ..SimpointConfig::default() };
        let sp = choose_simpoints(&w.program, &cfg).unwrap();
        let total: f64 = sp.points.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights: {total}");
        assert!(sp.points.len() <= 4);
        assert!(sp.points.windows(2).all(|w| w[0].interval < w[1].interval));
        assert!(sp.intervals >= sp.points.len());
    }

    #[test]
    fn selection_is_deterministic() {
        let w = workload("gcc", Scale::custom(400)).unwrap();
        let cfg = SimpointConfig { interval_uops: 10_000, k: 3, ..SimpointConfig::default() };
        let a = choose_simpoints(&w.program, &cfg).unwrap();
        let b = choose_simpoints(&w.program, &cfg).unwrap();
        let ia: Vec<_> = a.points.iter().map(|p| (p.interval, p.weight.to_bits())).collect();
        let ib: Vec<_> = b.points.iter().map(|p| (p.interval, p.weight.to_bits())).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn phased_programs_get_distinct_clusters() {
        // perlbench is three kernels back-to-back: phases should separate.
        let w = workload("perlbench", Scale::custom(800)).unwrap();
        let cfg = SimpointConfig { interval_uops: 6_000, k: 3, ..SimpointConfig::default() };
        let sp = choose_simpoints(&w.program, &cfg).unwrap();
        assert!(sp.points.len() >= 2, "distinct phases expected: {:?}",
            sp.points.iter().map(|p| p.interval).collect::<Vec<_>>());
    }

    #[test]
    fn estimate_tracks_the_full_run_at_both_levels() {
        let w = workload("perlbench", Scale::custom(3000)).unwrap();
        let cfg = SimpointConfig {
            interval_uops: 10_000,
            warmup_uops: 5_000,
            k: 6,
            ..SimpointConfig::default()
        };
        for level in [OptLevel::Baseline, OptLevel::Full] {
            let opts = SimOptions::new(level);
            let full = crate::run_workload(&w, &opts);
            let est = run_simpoints(&w, &opts, &cfg).unwrap();
            let ratio = est.estimated_cycles / full.cycles() as f64;
            assert!(
                (0.85..=1.2).contains(&ratio),
                "{level}: simpoint estimate off by {:.1}%",
                100.0 * (ratio - 1.0)
            );
        }
    }

    #[test]
    fn simpoint_speedup_agrees_with_full_run_direction() {
        let w = workload("freqmine", Scale::custom(1500)).unwrap();
        let cfg = SimpointConfig {
            interval_uops: 10_000,
            warmup_uops: 5_000,
            k: 4,
            ..SimpointConfig::default()
        };
        let s = simpoint_speedup(&w, &SimOptions::new(OptLevel::Full), &cfg).unwrap();
        assert!(s > 1.05, "SCC should win on freqmine via simpoints too: {s}");
    }

    #[test]
    fn too_short_programs_are_rejected() {
        let w = workload("lbm", Scale::custom(2)).unwrap();
        let cfg = SimpointConfig { interval_uops: 10_000_000, ..SimpointConfig::default() };
        assert_eq!(choose_simpoints(&w.program, &cfg).unwrap_err(), SimpointError::TooShort);
    }
}
