//! Artifact-compatible command-line driver.
//!
//! Accepts the flag names from the paper's artifact appendix (its gem5
//! `se.py` invocations), so the README's experiment recipes translate
//! almost verbatim:
//!
//! ```text
//! cargo run --release -p scc-sim --bin se -- \
//!     --workload freqmine --iters 4000 \
//!     --enable-superoptimization --lvpredType=eves \
//!     --predictionConfidenceThreshold=5 \
//!     --usingControlTracking=1 --usingCCTracking=1 \
//!     --uopCacheNumSets=24 --specCacheNumSets=24 --specCacheNumWays=4
//! ```
//!
//! Omitting `--enable-superoptimization` runs the baseline (optionally
//! with `--enableValuePredForwinding`, like the paper's baseline). Flags
//! the simulator does not model (`--caches`, `--mem-type`, …) are
//! accepted and ignored, with a note.
//!
//! Observability outputs: `--trace-out FILE` writes a Chrome trace-event
//! JSON (open in Perfetto), `--metrics-out FILE` the full metrics
//! registry, `--audit-out FILE` the SCC decision audit log (JSON Lines).
//! Exit codes: 2 for configuration errors, 1 for a run that failed to
//! complete, 0 otherwise.

use scc_core::AuditLog;
use scc_isa::trace::{shared, SharedSink, Tee};
use scc_sim::cli::{parse_se_args, SeParse};
use scc_sim::trace_export::{write_metrics_json, ChromeTraceSink};
use scc_sim::{SimBuilder, SimResult};
use scc_workloads::{all_workloads, Scale};
use std::cell::RefCell;
use std::rc::Rc;

fn usage() -> String {
    "usage: se --workload NAME [--iters N] [--enable-superoptimization]\n\
     \t[--lvpredType=eves|h3vp|stride|lvp] [--predictionConfidenceThreshold=N]\n\
     \t[--usingControlTracking=0|1] [--usingCCTracking=0|1]\n\
     \t[--uopCacheNumSets=N] [--specCacheNumSets=N] [--specCacheNumWays=N]\n\
     \t[--enableValuePredForwinding] [--list-workloads]\n\
     \t[--trace-out FILE] [--metrics-out FILE] [--audit-out FILE]\n\
     Unmodeled artifact flags (--caches, --mem-type, ...) are accepted and ignored."
        .into()
}

fn fail(msg: impl std::fmt::Display, code: i32) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(code);
}

fn create_parent_dirs(path: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                fail(format_args!("cannot create directory for {path}: {e}"), 1);
            }
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut notes = Vec::new();
    let args = match parse_se_args(&argv, &mut notes) {
        SeParse::Run(a) => a,
        SeParse::Help => {
            println!("{}", usage());
            return;
        }
        SeParse::Error(e) => {
            eprintln!("error: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    for n in &notes {
        eprintln!("note: {n}");
    }
    if args.list {
        for w in all_workloads(Scale::custom(1)) {
            println!("{:<14} {:?}  {}", w.name, w.suite, w.description);
        }
        return;
    }

    // Every construction path goes through the validated builder:
    // a bad knob is a typed ConfigError and exit code 2, not a panic.
    let sim = SimBuilder::from(&args).build().unwrap_or_else(|e| fail(e, 2));

    // Wire up the requested observability sinks (none attached = the
    // zero-overhead disabled path).
    let trace: Option<Rc<RefCell<ChromeTraceSink>>> =
        args.trace_out.as_ref().map(|_| shared(ChromeTraceSink::new()));
    let audit: Option<Rc<RefCell<AuditLog>>> =
        args.audit_out.as_ref().map(|_| shared(AuditLog::new()));
    let mut tee = Tee::new();
    if let Some(t) = &trace {
        tee.push(t.clone());
    }
    if let Some(a) = &audit {
        tee.push(a.clone());
    }

    let res: SimResult = if tee.is_empty() {
        sim.run()
    } else {
        let sink: SharedSink = shared(tee);
        sim.run_observed(sink)
    }
    .unwrap_or_else(|e| fail(e, 1));

    let s = &res.stats;
    // gem5-flavored stats dump.
    println!("---------- Begin Simulation Statistics ----------");
    println!("sim_cycles                     {:>14}", s.cycles);
    println!("committed_uops                 {:>14}", s.committed_uops);
    println!("program_uops                   {:>14}", s.program_uops);
    println!("ipc                            {:>14.4}", s.ipc());
    println!("fetch.uops_from_icache         {:>14}", s.uops_from_icache);
    println!("fetch.uops_from_uop_cache      {:>14}", s.uops_from_unopt);
    println!("fetch.uops_from_spec_cache     {:>14}", s.uops_from_opt);
    println!("squashes                       {:>14}", s.squashes);
    println!("squashed_uops                  {:>14}", s.squashed_uops);
    println!("branch.resolved                {:>14}", s.branches_resolved);
    println!("branch.mispredicted            {:>14}", s.branches_mispredicted);
    println!("scc.compactions                {:>14}", s.compactions);
    println!("scc.streams_committed          {:>14}", s.streams_committed);
    println!("scc.invariants_validated       {:>14}", s.invariants_validated);
    println!("scc.invariants_failed          {:>14}", s.invariants_failed);
    println!("scc.live_out_writes            {:>14}", s.live_out_writes);
    println!("vp.forwards                    {:>14}", s.vp_forwards);
    println!("vp.forward_fails               {:>14}", s.vp_forward_fails);
    println!("l1i.hit_rate                   {:>14.4}", s.hierarchy.l1i.hit_rate());
    println!("l1d.hit_rate                   {:>14.4}", s.hierarchy.l1d.hit_rate());
    println!("dram.accesses                  {:>14}", s.hierarchy.dram);
    println!("energy.total_mj                {:>14.6}", res.energy.total_mj());
    println!("---------- End Simulation Statistics   ----------");

    if let (Some(path), Some(t)) = (&args.trace_out, &trace) {
        match t.borrow().write(path) {
            Ok(_) => eprintln!("trace written to {path}"),
            Err(e) => fail(format_args!("writing {path}: {e}"), 1),
        }
    }
    if let Some(path) = &args.metrics_out {
        match write_metrics_json(path, &res.workload, res.level.label(), s) {
            Ok(_) => eprintln!("metrics written to {path}"),
            Err(e) => fail(format_args!("writing {path}: {e}"), 1),
        }
    }
    if let (Some(path), Some(a)) = (&args.audit_out, &audit) {
        create_parent_dirs(path);
        match a.borrow().write(path) {
            Ok(()) => eprintln!("audit log written to {path}"),
            Err(e) => fail(format_args!("writing {path}: {e}"), 1),
        }
    }
}
