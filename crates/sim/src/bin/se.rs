//! Artifact-compatible command-line driver.
//!
//! Accepts the flag names from the paper's artifact appendix (its gem5
//! `se.py` invocations), so the README's experiment recipes translate
//! almost verbatim:
//!
//! ```text
//! cargo run --release -p scc-sim --bin se -- \
//!     --workload freqmine --iters 4000 \
//!     --enable-superoptimization --lvpredType=eves \
//!     --predictionConfidenceThreshold=5 \
//!     --usingControlTracking=1 --usingCCTracking=1 \
//!     --uopCacheNumSets=24 --specCacheNumSets=24 --specCacheNumWays=4
//! ```
//!
//! Omitting `--enable-superoptimization` runs the baseline (optionally
//! with `--enableValuePredForwinding`, like the paper's baseline). Flags
//! the simulator does not model (`--caches`, `--mem-type`, …) are
//! accepted and ignored, with a note.

use scc_core::{OptFlags, SccConfig};
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig};
use scc_sim::cli::{parse_se_args, SeArgs, SeParse};
use scc_uopcache::UopCacheConfig;
use scc_workloads::{all_workloads, workload, Scale};

fn usage() -> String {
    "usage: se --workload NAME [--iters N] [--enable-superoptimization]\n\
     \t[--lvpredType=eves|h3vp|stride|lvp] [--predictionConfidenceThreshold=N]\n\
     \t[--usingControlTracking=0|1] [--usingCCTracking=0|1]\n\
     \t[--uopCacheNumSets=N] [--specCacheNumSets=N] [--specCacheNumWays=N]\n\
     \t[--enableValuePredForwinding] [--list-workloads]\n\
     Unmodeled artifact flags (--caches, --mem-type, ...) are accepted and ignored."
        .into()
}

fn config_for(args: &SeArgs) -> PipelineConfig {
    let frontend = if args.superopt {
        let mut flags = OptFlags::full();
        flags.control_invariants = args.control_tracking;
        flags.cc_tracking = args.cc_tracking;
        let mut scc = SccConfig::with_opts(flags);
        scc.confidence_threshold = args.confidence;
        FrontendMode::Scc {
            unopt: UopCacheConfig::unopt_partition(args.uop_sets),
            opt: UopCacheConfig {
                ways: args.spec_ways,
                ..UopCacheConfig::opt_partition(args.spec_sets)
            },
            scc,
        }
    } else {
        FrontendMode::Baseline {
            uop_cache: UopCacheConfig::unopt_partition(args.uop_sets.max(1)),
        }
    };
    PipelineConfig {
        frontend,
        value_predictor: args.lvpred,
        vp_forwarding: if args.vp_forwarding { Some(args.confidence) } else { None },
        ..PipelineConfig::baseline()
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut notes = Vec::new();
    let args = match parse_se_args(&argv, &mut notes) {
        SeParse::Run(a) => a,
        SeParse::Help => {
            println!("{}", usage());
            return;
        }
        SeParse::Error(e) => {
            eprintln!("error: {e}\n{}", usage());
            std::process::exit(2);
        }
    };
    for n in &notes {
        eprintln!("note: {n}");
    }
    if args.list {
        for w in all_workloads(Scale::custom(1)) {
            println!("{:<14} {:?}  {}", w.name, w.suite, w.description);
        }
        return;
    }
    let w = workload(&args.workload, Scale::custom(args.iters)).unwrap_or_else(|| {
        eprintln!("error: unknown workload {} (try --list-workloads)", args.workload);
        std::process::exit(2);
    });
    let mut pipe = Pipeline::new(&w.program, config_for(&args));
    let res = pipe.run(args.max_cycles);
    let s = &res.stats;
    // gem5-flavored stats dump.
    println!("---------- Begin Simulation Statistics ----------");
    println!("sim_cycles                     {:>14}", s.cycles);
    println!("committed_uops                 {:>14}", s.committed_uops);
    println!("program_uops                   {:>14}", s.program_uops);
    println!("ipc                            {:>14.4}", s.ipc());
    println!("fetch.uops_from_icache         {:>14}", s.uops_from_icache);
    println!("fetch.uops_from_uop_cache      {:>14}", s.uops_from_unopt);
    println!("fetch.uops_from_spec_cache     {:>14}", s.uops_from_opt);
    println!("squashes                       {:>14}", s.squashes);
    println!("squashed_uops                  {:>14}", s.squashed_uops);
    println!("branch.resolved                {:>14}", s.branches_resolved);
    println!("branch.mispredicted            {:>14}", s.branches_mispredicted);
    println!("scc.compactions                {:>14}", s.compactions);
    println!("scc.streams_committed          {:>14}", s.streams_committed);
    println!("scc.invariants_validated       {:>14}", s.invariants_validated);
    println!("scc.invariants_failed          {:>14}", s.invariants_failed);
    println!("scc.live_out_writes            {:>14}", s.live_out_writes);
    println!("vp.forwards                    {:>14}", s.vp_forwards);
    println!("vp.forward_fails               {:>14}", s.vp_forward_fails);
    println!("l1i.hit_rate                   {:>14.4}", s.hierarchy.l1i.hit_rate());
    println!("l1d.hit_rate                   {:>14.4}", s.hierarchy.l1d.hit_rate());
    println!("dram.accesses                  {:>14}", s.hierarchy.dram);
    let energy = scc_energy::EnergyModel::icelake().energy(&scc_sim::energy_events(s));
    println!("energy.total_mj                {:>14.6}", energy.total_mj());
    println!("---------- End Simulation Statistics   ----------");
}
