//! Binary codec for persisted [`SimResult`]s — the value format of the
//! runner's `scc-store` tier.
//!
//! # Why not reuse the JSON report?
//!
//! The wire report (`report_json`) is a *view*: it rounds, selects, and
//! formats. The store must round-trip a result **byte-identically** —
//! the serve-layer tests assert a warm-started server produces the same
//! response bytes as a cold simulation, which requires every counter
//! and every `f64` bit pattern to survive. So this codec encodes the
//! full struct, floats via `to_bits`, with no lossy formatting.
//!
//! # Staleness discipline
//!
//! [`SCHEMA_VERSION`] names this encoding. It is stamped into every
//! segment header next to the engine git revision; `scc-store` refuses
//! whole segments on mismatch at recovery, so decode here never sees
//! bytes from another schema *era*. Decoding is still fully defensive
//! (bounds-checked, trailing bytes rejected) because disk rot below the
//! CRC's detection odds, though astronomically unlikely, must degrade
//! to a cache miss rather than a panic.
//!
//! **Bump [`SCHEMA_VERSION`] whenever the encoding changes.** The
//! struct encoders destructure every field exhaustively, so adding a
//! field to [`SimResult`], `PipelineStats`, or any nested stats struct
//! is a compile error here — the reviewer is forced to extend the codec
//! and bump the version together.

use crate::{OptLevel, SimResult};
use scc_energy::EnergyBreakdown;
use scc_isa::{ArchSnapshot, CcFlags, NUM_REGS};
use scc_memsys::{CacheStats, HierarchyStats};
use scc_pipeline::PipelineStats;
use scc_uopcache::{OptPartitionStats, UnoptPartitionStats};

/// Version of this encoding, stamped into `scc-store` segment headers.
pub const SCHEMA_VERSION: u32 = 1;

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(b: &mut Vec<u8>, v: i64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(b: &mut Vec<u8>, v: f64) {
    // Bit-exact: the warm path must reproduce cold results byte for
    // byte, so no decimal round-trip is acceptable.
    b.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).ok().map(str::to_string)
    }
}

fn level_code(level: OptLevel) -> u8 {
    match level {
        OptLevel::Baseline => 0,
        OptLevel::PartitionedBaseline => 1,
        OptLevel::MoveElim => 2,
        OptLevel::FoldProp => 3,
        OptLevel::BranchFold => 4,
        OptLevel::Full => 5,
    }
}

fn level_from_code(code: u8) -> Option<OptLevel> {
    Some(match code {
        0 => OptLevel::Baseline,
        1 => OptLevel::PartitionedBaseline,
        2 => OptLevel::MoveElim,
        3 => OptLevel::FoldProp,
        4 => OptLevel::BranchFold,
        5 => OptLevel::Full,
        _ => return None,
    })
}

fn encode_cache_stats(b: &mut Vec<u8>, s: &CacheStats) {
    let CacheStats { hits, misses } = s;
    put_u64(b, *hits);
    put_u64(b, *misses);
}

fn decode_cache_stats(r: &mut Reader<'_>) -> Option<CacheStats> {
    Some(CacheStats { hits: r.u64()?, misses: r.u64()? })
}

fn encode_stats(b: &mut Vec<u8>, s: &PipelineStats) {
    // Exhaustive destructure: a new counter anywhere in the stats tree
    // fails to compile here until the codec (and SCHEMA_VERSION) are
    // updated with it.
    let PipelineStats {
        cycles,
        committed_uops,
        program_uops,
        committed_ghosts,
        live_out_writes,
        uops_from_icache,
        uops_from_unopt,
        uops_from_opt,
        squashed_uops,
        squashes,
        scc_data_squashes,
        scc_control_squashes,
        branch_squashes,
        branches_resolved,
        branches_mispredicted,
        vp_trains,
        vp_forwards,
        vp_forward_fails,
        vp_probes,
        invariants_validated,
        invariants_failed,
        compactions,
        streams_committed,
        compactions_discarded,
        compactions_aborted,
        scc_busy_cycles,
        scc_alu_ops,
        renamed_uops,
        exec_alu,
        exec_muldiv,
        exec_fp,
        exec_loads,
        exec_stores,
        bp_lookups,
        uopcache_lookups,
        decoded_macros,
        hierarchy,
        unopt,
        opt,
    } = s;
    for v in [
        cycles,
        committed_uops,
        program_uops,
        committed_ghosts,
        live_out_writes,
        uops_from_icache,
        uops_from_unopt,
        uops_from_opt,
        squashed_uops,
        squashes,
        scc_data_squashes,
        scc_control_squashes,
        branch_squashes,
        branches_resolved,
        branches_mispredicted,
        vp_trains,
        vp_forwards,
        vp_forward_fails,
        vp_probes,
        invariants_validated,
        invariants_failed,
        compactions,
        streams_committed,
        compactions_discarded,
        compactions_aborted,
        scc_busy_cycles,
        scc_alu_ops,
        renamed_uops,
        exec_alu,
        exec_muldiv,
        exec_fp,
        exec_loads,
        exec_stores,
        bp_lookups,
        uopcache_lookups,
        decoded_macros,
    ] {
        put_u64(b, *v);
    }
    let HierarchyStats { l1i, l1d, l2, l3, dram } = hierarchy;
    encode_cache_stats(b, l1i);
    encode_cache_stats(b, l1d);
    encode_cache_stats(b, l2);
    encode_cache_stats(b, l3);
    put_u64(b, *dram);
    let UnoptPartitionStats { hits, misses, fills, evictions, fill_rejects } = unopt;
    for v in [hits, misses, fills, evictions, fill_rejects] {
        put_u64(b, *v);
    }
    let OptPartitionStats { hits, misses, inserts, evictions, phased_out, insert_rejects } = opt;
    for v in [hits, misses, inserts, evictions, phased_out, insert_rejects] {
        put_u64(b, *v);
    }
}

fn decode_stats(r: &mut Reader<'_>) -> Option<PipelineStats> {
    Some(PipelineStats {
        cycles: r.u64()?,
        committed_uops: r.u64()?,
        program_uops: r.u64()?,
        committed_ghosts: r.u64()?,
        live_out_writes: r.u64()?,
        uops_from_icache: r.u64()?,
        uops_from_unopt: r.u64()?,
        uops_from_opt: r.u64()?,
        squashed_uops: r.u64()?,
        squashes: r.u64()?,
        scc_data_squashes: r.u64()?,
        scc_control_squashes: r.u64()?,
        branch_squashes: r.u64()?,
        branches_resolved: r.u64()?,
        branches_mispredicted: r.u64()?,
        vp_trains: r.u64()?,
        vp_forwards: r.u64()?,
        vp_forward_fails: r.u64()?,
        vp_probes: r.u64()?,
        invariants_validated: r.u64()?,
        invariants_failed: r.u64()?,
        compactions: r.u64()?,
        streams_committed: r.u64()?,
        compactions_discarded: r.u64()?,
        compactions_aborted: r.u64()?,
        scc_busy_cycles: r.u64()?,
        scc_alu_ops: r.u64()?,
        renamed_uops: r.u64()?,
        exec_alu: r.u64()?,
        exec_muldiv: r.u64()?,
        exec_fp: r.u64()?,
        exec_loads: r.u64()?,
        exec_stores: r.u64()?,
        bp_lookups: r.u64()?,
        uopcache_lookups: r.u64()?,
        decoded_macros: r.u64()?,
        hierarchy: HierarchyStats {
            l1i: decode_cache_stats(r)?,
            l1d: decode_cache_stats(r)?,
            l2: decode_cache_stats(r)?,
            l3: decode_cache_stats(r)?,
            dram: r.u64()?,
        },
        unopt: UnoptPartitionStats {
            hits: r.u64()?,
            misses: r.u64()?,
            fills: r.u64()?,
            evictions: r.u64()?,
            fill_rejects: r.u64()?,
        },
        opt: OptPartitionStats {
            hits: r.u64()?,
            misses: r.u64()?,
            inserts: r.u64()?,
            evictions: r.u64()?,
            phased_out: r.u64()?,
            insert_rejects: r.u64()?,
        },
    })
}

/// Serializes one result for the persistent store.
pub fn encode_result(result: &SimResult) -> Vec<u8> {
    let SimResult { workload, level, stats, energy, snapshot, halted } = result;
    let mut b = Vec::with_capacity(768 + snapshot.mem.len() * 16);
    put_str(&mut b, workload);
    b.push(level_code(*level));
    encode_stats(&mut b, stats);
    let EnergyBreakdown { frontend_pj, backend_pj, memory_pj, static_pj } = energy;
    put_f64(&mut b, *frontend_pj);
    put_f64(&mut b, *backend_pj);
    put_f64(&mut b, *memory_pj);
    put_f64(&mut b, *static_pj);
    let ArchSnapshot { regs, cc, mem } = snapshot;
    put_u32(&mut b, NUM_REGS as u32);
    for r in regs {
        put_i64(&mut b, *r);
    }
    let CcFlags { zf, sf, of, cf } = cc;
    for flag in [zf, sf, of, cf] {
        b.push(*flag as u8);
    }
    put_u32(&mut b, mem.len() as u32);
    for (addr, val) in mem {
        put_u64(&mut b, *addr);
        put_i64(&mut b, *val);
    }
    b.push(*halted as u8);
    b
}

/// Deserializes a result persisted by [`encode_result`]. `None` on any
/// structural problem — the store tier treats that as a miss (and
/// counts it), never as data.
pub fn decode_result(bytes: &[u8]) -> Option<SimResult> {
    let mut r = Reader { b: bytes, at: 0 };
    let workload = r.string()?;
    let level = level_from_code(r.u8()?)?;
    let stats = decode_stats(&mut r)?;
    let energy = EnergyBreakdown {
        frontend_pj: r.f64()?,
        backend_pj: r.f64()?,
        memory_pj: r.f64()?,
        static_pj: r.f64()?,
    };
    if r.u32()? as usize != NUM_REGS {
        return None;
    }
    let mut regs = [0i64; NUM_REGS];
    for reg in &mut regs {
        *reg = r.i64()?;
    }
    let cc = CcFlags { zf: r.bool()?, sf: r.bool()?, of: r.bool()?, cf: r.bool()? };
    let mem_len = r.u32()? as usize;
    // Cheap plausibility bound before allocating.
    if mem_len > bytes.len() / 16 + 1 {
        return None;
    }
    let mut mem = Vec::with_capacity(mem_len);
    for _ in 0..mem_len {
        mem.push((r.u64()?, r.i64()?));
    }
    let snapshot = ArchSnapshot { regs, cc, mem };
    let halted = r.bool()?;
    if r.at != bytes.len() {
        return None; // trailing bytes: not something we wrote
    }
    Some(SimResult { workload, level, stats, energy, snapshot, halted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_workload, SimOptions};
    use scc_workloads::{workload, Scale};

    fn sample() -> SimResult {
        let w = workload("freqmine", Scale::custom(400)).unwrap();
        run_workload(&w, &SimOptions::new(OptLevel::Full))
    }

    #[test]
    fn real_results_round_trip_bit_exactly() {
        let r = sample();
        let bytes = encode_result(&r);
        let back = decode_result(&bytes).expect("round trip");
        assert_eq!(back.workload, r.workload);
        assert_eq!(back.level, r.level);
        assert_eq!(back.stats, r.stats);
        assert_eq!(back.snapshot, r.snapshot);
        assert_eq!(back.halted, r.halted);
        // f64 equality via bit patterns — the byte-identity guarantee.
        for (a, b) in [
            (back.energy.frontend_pj, r.energy.frontend_pj),
            (back.energy.backend_pj, r.energy.backend_pj),
            (back.energy.memory_pj, r.energy.memory_pj),
            (back.energy.static_pj, r.energy.static_pj),
        ] {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And re-encoding is byte-stable.
        assert_eq!(encode_result(&back), bytes);
    }

    #[test]
    fn all_levels_round_trip() {
        for level in OptLevel::all() {
            assert_eq!(level_from_code(level_code(level)), Some(level));
        }
        assert_eq!(level_from_code(6), None);
    }

    #[test]
    fn truncation_at_every_offset_is_rejected_not_panicking() {
        let bytes = encode_result(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_result(&bytes[..cut]).is_none(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_result(&sample());
        bytes.push(0);
        assert!(decode_result(&bytes).is_none());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_result(&[]).is_none());
        assert!(decode_result(&[0xFF; 64]).is_none());
        let mut absurd = Vec::new();
        put_u32(&mut absurd, u32::MAX); // workload "length"
        assert!(decode_result(&absurd).is_none());
    }
}
