//! Reporting helpers: normalization, geometric means, and the TSV tables
//! the figure harnesses print (the moral equivalent of the artifact's
//! plot scripts).

use crate::SimResult;

/// Geometric mean of a sequence of positive ratios.
///
/// Returns 1.0 for an empty input (the identity of normalization).
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// `new / base` as a ratio (normalized execution time, energy, …).
pub fn normalized(base: f64, new: f64) -> f64 {
    assert!(base > 0.0, "normalization base must be positive");
    new / base
}

/// Speedup of `new` over `base` in percent (positive = faster).
pub fn speedup_pct(base_cycles: u64, new_cycles: u64) -> f64 {
    100.0 * (base_cycles as f64 / new_cycles as f64 - 1.0)
}

/// Micro-op count reduction in percent (positive = fewer micro-ops).
pub fn reduction_pct(base: u64, new: u64) -> f64 {
    100.0 * (1.0 - new as f64 / base as f64)
}

/// A simple aligned table writer for figure output.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Wall-clock accounting for one simulation run, as recorded by the
/// parallel experiment runner ([`crate::runner`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RunTiming {
    /// Workload name.
    pub workload: String,
    /// Optimization-level label of the run.
    pub level: &'static str,
    /// Host wall-clock seconds the simulation took (0 for cache hits).
    pub wall_secs: f64,
    /// Committed micro-ops the run simulated.
    pub uops: u64,
    /// True when the result came from the cross-figure result cache
    /// instead of a fresh simulation.
    pub cached: bool,
}

impl RunTiming {
    /// Simulated micro-ops per host second (0 for cache hits).
    pub fn uops_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.uops as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Version of the `BENCH_throughput.json` document layout. Bump when a
/// field changes meaning or moves, so trajectory tooling comparing
/// snapshots across commits can refuse apples-to-oranges diffs. Version
/// history: 1 = untagged (no meta object), 2 = adds `schema_version` and
/// `git_rev`.
pub const THROUGHPUT_SCHEMA_VERSION: u32 = 2;

/// Renders per-run, per-workload, and aggregate simulation throughput
/// (simulated micro-ops per host second) as a JSON document — the payload
/// of `results/BENCH_throughput.json`.
///
/// The header tags the snapshot with [`THROUGHPUT_SCHEMA_VERSION`] and
/// `git_rev` (the source revision the binary was built from, or
/// `"unknown"`), so sequences of committed snapshots are comparable.
/// Cache hits are listed per run but excluded from the throughput rates,
/// since they cost no simulation time.
pub fn throughput_json(timings: &[RunTiming], git_rev: &str) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": {THROUGHPUT_SCHEMA_VERSION},\n  \"git_rev\": \"{}\",\n  \
         \"runs\": [\n",
        json_escape(git_rev),
    );
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"level\": \"{}\", \"wall_secs\": {:.6}, \
             \"uops\": {}, \"uops_per_sec\": {:.1}, \"cached\": {}}}{}\n",
            json_escape(&t.workload),
            json_escape(t.level),
            t.wall_secs,
            t.uops,
            t.uops_per_sec(),
            t.cached,
            if i + 1 < timings.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"per_workload\": [\n");
    // Group fresh runs by workload, preserving first-seen order.
    let mut names: Vec<&str> = Vec::new();
    for t in timings {
        if !names.contains(&t.workload.as_str()) {
            names.push(&t.workload);
        }
    }
    for (i, name) in names.iter().enumerate() {
        let fresh: Vec<&RunTiming> =
            timings.iter().filter(|t| t.workload == *name && !t.cached).collect();
        let secs: f64 = fresh.iter().map(|t| t.wall_secs).sum();
        let uops: u64 = fresh.iter().map(|t| t.uops).sum();
        let rate = if secs > 0.0 { uops as f64 / secs } else { 0.0 };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"runs\": {}, \"wall_secs\": {:.6}, \
             \"uops\": {}, \"uops_per_sec\": {:.1}}}{}\n",
            json_escape(name),
            fresh.len(),
            secs,
            uops,
            rate,
            if i + 1 < names.len() { "," } else { "" },
        ));
    }
    let fresh: Vec<&RunTiming> = timings.iter().filter(|t| !t.cached).collect();
    let secs: f64 = fresh.iter().map(|t| t.wall_secs).sum();
    let uops: u64 = fresh.iter().map(|t| t.uops).sum();
    let rate = if secs > 0.0 { uops as f64 / secs } else { 0.0 };
    out.push_str(&format!(
        "  ],\n  \"aggregate\": {{\"runs\": {}, \"cached_hits\": {}, \"wall_secs\": {:.6}, \
         \"uops\": {}, \"uops_per_sec\": {:.1}}}\n}}\n",
        fresh.len(),
        timings.len() - fresh.len(),
        secs,
        uops,
        rate,
    ));
    out
}

/// Summarizes a set of per-workload results against their baselines,
/// returning `(mean speedup %, max speedup %, mean uop reduction %)`.
pub fn summarize(pairs: &[(&SimResult, &SimResult)]) -> (f64, f64, f64) {
    let speedups: Vec<f64> =
        pairs.iter().map(|(b, n)| b.cycles() as f64 / n.cycles() as f64).collect();
    let mean = (geomean(speedups.iter().copied()) - 1.0) * 100.0;
    let max = pairs
        .iter()
        .map(|(b, n)| speedup_pct(b.cycles(), n.cycles()))
        .fold(f64::MIN, f64::max);
    let red = pairs
        .iter()
        .map(|(b, n)| reduction_pct(b.uops(), n.uops()))
        .sum::<f64>()
        / pairs.len().max(1) as f64;
    (mean, max, red)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
        assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn ratios() {
        assert!((normalized(200.0, 150.0) - 0.75).abs() < 1e-12);
        assert!((speedup_pct(120, 100) - 20.0).abs() < 1e-12);
        assert!((reduction_pct(100, 92) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["bench", "speedup"]);
        t.row(&["xalancbmk".into(), "1.18".into()]);
        t.row(&["gcc".into(), "1.04".into()]);
        let s = t.render();
        assert!(s.starts_with("bench"));
        assert!(s.contains("xalancbmk  1.18"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_validates_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn throughput_json_aggregates_fresh_runs_only() {
        let timings = vec![
            RunTiming {
                workload: "gcc".into(),
                level: "baseline",
                wall_secs: 2.0,
                uops: 1_000_000,
                cached: false,
            },
            RunTiming {
                workload: "gcc".into(),
                level: "full-scc",
                wall_secs: 0.0,
                uops: 900_000,
                cached: true,
            },
            RunTiming {
                workload: "mcf".into(),
                level: "baseline",
                wall_secs: 2.0,
                uops: 3_000_000,
                cached: false,
            },
        ];
        let j = throughput_json(&timings, "abc123def456");
        assert!(j.starts_with(&format!(
            "{{\n  \"schema_version\": {THROUGHPUT_SCHEMA_VERSION},\n  \"git_rev\": \"abc123def456\","
        )));
        assert!(j.contains("\"aggregate\": {\"runs\": 2, \"cached_hits\": 1"));
        // 4M uops over 4 seconds of fresh simulation.
        assert!(j.contains("\"wall_secs\": 4.000000, \"uops\": 4000000, \"uops_per_sec\": 1000000.0"));
        assert!(j.contains("\"workload\": \"gcc\", \"runs\": 1"));
    }

    #[test]
    fn run_timing_rate() {
        let t = RunTiming {
            workload: "x".into(),
            level: "baseline",
            wall_secs: 2.0,
            uops: 10,
            cached: false,
        };
        assert_eq!(t.uops_per_sec(), 5.0);
        let hit = RunTiming { wall_secs: 0.0, cached: true, ..t };
        assert_eq!(hit.uops_per_sec(), 0.0);
    }
}
