//! Cache hierarchy and DRAM latency model for the SCC reproduction.
//!
//! Models the conventional memory system of Table I: L1I 32 KB/8-way,
//! L1D 48 KB/12-way, L2 512 KB/8-way (LRU), L3 8 MB/16-way (random
//! replacement), DDR4-class main memory as a fixed latency. The model is
//! *latency-functional*: each access walks the hierarchy, updates
//! replacement state, fills lines inclusively, and returns the total
//! latency plus which levels were touched (the energy model charges per
//! touch). Bandwidth contention and MSHRs are not modeled — DESIGN.md §4
//! records this substitution; the paper's figures depend on hit/miss
//! behaviour and relative level costs, both of which are modeled.
//!
//! # Example
//!
//! ```
//! use scc_memsys::{MemoryHierarchy, HierarchyConfig};
//!
//! let mut mem = MemoryHierarchy::new(&HierarchyConfig::icelake());
//! let cold = mem.data_access(0x1000, false);
//! let warm = mem.data_access(0x1000, false);
//! assert!(cold.latency > warm.latency);
//! assert_eq!(warm.latency, mem.config().l1_latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy};
pub use hierarchy::{
    AccessResult, HierarchyConfig, HierarchyStats, Level, MemoryHierarchy, TouchedLevels,
};
