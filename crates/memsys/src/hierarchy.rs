//! The composed L1I/L1D → L2 → L3 → DRAM hierarchy.

use crate::cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy};

/// A level of the hierarchy, reported on each access for energy
/// accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Level {
    /// L1 instruction cache.
    L1I,
    /// L1 data cache.
    L1D,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Dram,
}

/// Configuration of the whole hierarchy (latencies in cycles).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
    /// L1 hit latency.
    pub l1_latency: u64,
    /// L2 hit latency (total, from access start).
    pub l2_latency: u64,
    /// L3 hit latency (total).
    pub l3_latency: u64,
    /// DRAM latency (total).
    pub dram_latency: u64,
}

impl HierarchyConfig {
    /// Table I's Ice Lake-like configuration: L1I 32 KB/8-way, L1D
    /// 48 KB/12-way, L2 512 KB/8-way LRU, L3 8 MB/16-way random, with
    /// latencies typical of the part (5/14/42/200 cycles at 2.4 GHz with
    /// DDR4-2400).
    pub fn icelake() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: ReplacementPolicy::Lru,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                line_bytes: 64,
                replacement: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 512 * 1024,
                ways: 8,
                line_bytes: 64,
                replacement: ReplacementPolicy::Lru,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                replacement: ReplacementPolicy::Random,
            },
            l1_latency: 5,
            l2_latency: 14,
            l3_latency: 42,
            dram_latency: 200,
        }
    }
}

/// The levels one access touched, outermost last — an inline array
/// (at most L1 → L2 → L3 → DRAM) so the per-access hot path never
/// heap-allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TouchedLevels {
    levels: [Level; 4],
    len: u8,
}

impl TouchedLevels {
    fn new() -> TouchedLevels {
        // Placeholder slots beyond `len` are never exposed.
        TouchedLevels { levels: [Level::L1I; 4], len: 0 }
    }

    fn push(&mut self, level: Level) {
        self.levels[self.len as usize] = level;
        self.len += 1;
    }

    /// The touched levels, outermost last.
    pub fn as_slice(&self) -> &[Level] {
        &self.levels[..self.len as usize]
    }
}

impl std::ops::Deref for TouchedLevels {
    type Target = [Level];

    fn deref(&self) -> &[Level] {
        self.as_slice()
    }
}

/// The outcome of one hierarchy access. Returned by value with no heap
/// payload — the pipeline calls this once per load on its hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles.
    pub latency: u64,
    /// Levels touched, outermost last (for per-access energy charging).
    pub touched: TouchedLevels,
    /// The level that supplied the data.
    pub supplied_by: Level,
}

impl AccessResult {
    /// The absolute cycle this access completes when it starts at `now` —
    /// the earliest-completion event the pipeline's event-driven
    /// fast-forward jumps to (every access occupies at least one cycle).
    pub fn completes_at(&self, now: u64) -> u64 {
        now + self.latency.max(1)
    }
}

/// Aggregate per-level access counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1I hit/miss counters.
    pub l1i: CacheStats,
    /// L1D hit/miss counters.
    pub l1d: CacheStats,
    /// L2 hit/miss counters.
    pub l2: CacheStats,
    /// L3 hit/miss counters.
    pub l3: CacheStats,
    /// DRAM accesses.
    pub dram: u64,
}

impl HierarchyStats {
    /// Every counter as a dotted `(name, value)` pair (e.g. `l1i.hits`),
    /// in declaration order. The exhaustive destructuring makes this the
    /// single source of truth: a new field fails to compile until listed.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let HierarchyStats { l1i, l1d, l2, l3, dram } = self;
        let mut out = Vec::with_capacity(9);
        for (level, stats) in [("l1i", l1i), ("l1d", l1d), ("l2", l2), ("l3", l3)] {
            for (name, value) in stats.counters() {
                out.push((format!("{level}.{name}"), value));
            }
        }
        out.push(("dram.accesses".to_string(), *dram));
        out
    }
}

/// The composed memory hierarchy.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_accesses: u64,
}

impl MemoryHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: &HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            config: *config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            dram_accesses: 0,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    fn walk(&mut self, addr: u64, instr: bool) -> AccessResult {
        let mut touched = TouchedLevels::new();
        let l1 = if instr { &mut self.l1i } else { &mut self.l1d };
        touched.push(if instr { Level::L1I } else { Level::L1D });
        if l1.access(addr) {
            return AccessResult {
                latency: self.config.l1_latency,
                touched,
                supplied_by: if instr { Level::L1I } else { Level::L1D },
            };
        }
        touched.push(Level::L2);
        if self.l2.access(addr) {
            return AccessResult {
                latency: self.config.l2_latency,
                touched,
                supplied_by: Level::L2,
            };
        }
        touched.push(Level::L3);
        if self.l3.access(addr) {
            return AccessResult {
                latency: self.config.l3_latency,
                touched,
                supplied_by: Level::L3,
            };
        }
        touched.push(Level::Dram);
        self.dram_accesses += 1;
        AccessResult { latency: self.config.dram_latency, touched, supplied_by: Level::Dram }
    }

    /// Fetches instruction bytes at `addr` (fills on the instruction side).
    pub fn instr_access(&mut self, addr: u64) -> AccessResult {
        self.walk(addr, true)
    }

    /// Accesses data at `addr`. `write` is accounted identically — caches
    /// are write-allocate, and write latency is hidden by the store buffer
    /// in the pipeline model, which uses this only for line residency.
    pub fn data_access(&mut self, addr: u64, write: bool) -> AccessResult {
        let _ = write;
        self.walk(addr, false)
    }

    /// True if `addr` hits in L1D without state updates.
    pub fn probe_l1d(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            dram: self.dram_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_fill_path() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        let r = m.data_access(0x4000, false);
        assert_eq!(r.supplied_by, Level::Dram);
        assert_eq!(r.latency, 200);
        assert_eq!(r.touched.as_slice(), [Level::L1D, Level::L2, Level::L3, Level::Dram]);
        // Now everything on the path holds the line.
        let r = m.data_access(0x4000, false);
        assert_eq!(r.supplied_by, Level::L1D);
        assert_eq!(r.latency, 5);
    }

    #[test]
    fn instruction_and_data_sides_are_separate() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        m.instr_access(0x8000);
        // Data access to the same address misses L1D but hits L2.
        let r = m.data_access(0x8000, false);
        assert_eq!(r.supplied_by, Level::L2);
        assert_eq!(r.latency, 14);
    }

    #[test]
    fn l1i_capacity_causes_misses() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        // Touch 2x the L1I capacity in distinct lines, twice.
        let lines = 2 * 32 * 1024 / 64;
        for round in 0..2 {
            for i in 0..lines {
                m.instr_access((i * 64) as u64);
            }
            let s = m.stats();
            if round == 1 {
                // Second round: L1I thrashes (LRU + working set 2x capacity
                // means everything missed), but L2 covers it.
                assert!(s.l1i.misses > lines as u64, "L1I should thrash");
                assert!(s.l2.hits > 0, "L2 should absorb L1I misses");
            }
        }
        assert_eq!(m.stats().dram, 1024, "each distinct line reads DRAM once");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        for _ in 0..10 {
            m.data_access(0x100, false);
        }
        let s = m.stats();
        assert_eq!(s.l1d.accesses(), 10);
        assert_eq!(s.l1d.hits, 9);
        assert_eq!(s.dram, 1);
    }

    #[test]
    fn completes_at_is_absolute_and_nonzero() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        let cold = m.data_access(0x9000, false);
        assert_eq!(cold.completes_at(1_000), 1_200);
        let warm = m.data_access(0x9000, false);
        assert_eq!(warm.completes_at(1_000), 1_005);
        // Even a hypothetical zero-latency result occupies one cycle.
        let instant = AccessResult { latency: 0, ..warm };
        assert_eq!(instant.completes_at(7), 8);
    }

    #[test]
    fn probe_l1d_nonmutating() {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        assert!(!m.probe_l1d(0x40));
        m.data_access(0x40, true);
        assert!(m.probe_l1d(0x40));
        assert_eq!(m.stats().l1d.accesses(), 1);
    }
}
