//! A generic set-associative cache with pluggable replacement.

/// Replacement policy for a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (Table I: L1/L2).
    #[default]
    Lru,
    /// Pseudo-random (Table I: L3).
    Random,
}

/// Geometry and behaviour of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways × line_bytes` power-of-two sets).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The exhaustive destructuring makes this the single source of truth:
    /// adding a field without listing it here fails to compile.
    pub fn counters(&self) -> [(&'static str, u64); 2] {
        let CacheStats { hits, misses } = *self;
        [("hits", hits), ("misses", misses)]
    }

    /// Hit rate in `[0, 1]`; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU timestamp (higher = more recent).
    stamp: u64,
}

/// A set-associative cache over byte addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Line>, // sets * ways
    clock: u64,
    rng: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![Line { tag: 0, valid: false, stamp: 0 }; sets * config.ways],
            clock: 0,
            rng: 0x1234_5678_9ABC_DEF0,
            stats: CacheStats::default(),
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        ((line as usize) & (self.sets - 1), line / self.sets as u64)
    }

    /// Accesses `addr`; returns true on hit. On a miss the line is filled
    /// (evicting per policy).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        let ways = &mut self.lines[base..base + self.config.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = match self.config.replacement {
            ReplacementPolicy::Lru => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
                .map(|(i, _)| i)
                .unwrap_or(0),
            ReplacementPolicy::Random => {
                if let Some(i) = ways.iter().position(|l| !l.valid) {
                    i
                } else {
                    // xorshift
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    (self.rng as usize) % self.config.ways
                }
            }
        };
        ways[victim] = Line { tag, valid: true, stamp: self.clock };
        false
    }

    /// True if `addr` is resident, without updating replacement state or
    /// stats.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line holding `addr`, if resident.
    pub fn invalidate(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.config.ways;
        for l in &mut self.lines[base..base + self.config.ways] {
            if l.valid && l.tag == tag {
                l.valid = false;
            }
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: usize, policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 64 * ways * 4, // 4 sets
            ways,
            line_bytes: 64,
            replacement: policy,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 3 * 64,
            ways: 1,
            line_bytes: 64,
            replacement: ReplacementPolicy::Lru,
        };
        let _ = c.sets();
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small(2, ReplacementPolicy::Lru);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1001), "same line");
        assert!(!c.access(0x1040), "next line misses");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small(2, ReplacementPolicy::Lru);
        // Three lines mapping to the same set (4 sets, 64B lines: stride 256).
        c.access(0x0000);
        c.access(0x0100);
        c.access(0x0000); // refresh 0x0000
        c.access(0x0200); // evicts 0x0100
        assert!(c.probe(0x0000));
        assert!(!c.probe(0x0100));
        assert!(c.probe(0x0200));
    }

    #[test]
    fn random_fills_invalid_first() {
        let mut c = small(4, ReplacementPolicy::Random);
        for i in 0..4 {
            c.access(0x100 * i);
        }
        for i in 0..4 {
            assert!(c.probe(0x100 * i), "all four ways should be resident");
        }
        // Fifth line evicts exactly one of them.
        c.access(0x400);
        let resident = (0..5).filter(|&i| c.probe(0x100 * i)).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn probe_does_not_count() {
        let mut c = small(2, ReplacementPolicy::Lru);
        c.access(0x0);
        let s = c.stats();
        let _ = c.probe(0x0);
        let _ = c.probe(0x40);
        assert_eq!(c.stats(), s);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small(2, ReplacementPolicy::Lru);
        c.access(0x0);
        assert!(c.probe(0x0));
        c.invalidate(0x0);
        assert!(!c.probe(0x0));
    }

    #[test]
    fn hit_rate() {
        let mut c = small(2, ReplacementPolicy::Lru);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
