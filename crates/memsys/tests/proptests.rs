//! Property-based tests: cache and hierarchy invariants under arbitrary
//! access streams.

use proptest::prelude::*;
use scc_memsys::{Cache, CacheConfig, HierarchyConfig, Level, MemoryHierarchy, ReplacementPolicy};

fn small_cache(ways: usize, policy: ReplacementPolicy) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 64 * ways * 8, // 8 sets
        ways,
        line_bytes: 64,
        replacement: policy,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hits_plus_misses_equals_accesses(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..500),
        ways in 1usize..8,
    ) {
        let mut c = small_cache(ways, ReplacementPolicy::Lru);
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    #[test]
    fn repeat_access_always_hits(addr in any::<u64>(), ways in 1usize..8) {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Random] {
            let mut c = small_cache(ways, policy);
            c.access(addr);
            prop_assert!(c.access(addr), "immediate re-access must hit");
            prop_assert!(c.probe(addr));
        }
    }

    #[test]
    fn working_set_within_capacity_never_misses_twice(
        set_lines in 1usize..4,
        rounds in 2usize..6,
    ) {
        // Touch `set_lines` distinct lines per set (≤ ways): after the
        // first round everything hits forever under LRU.
        let ways = 4;
        let mut c = small_cache(ways, ReplacementPolicy::Lru);
        let sets = 8u64;
        let lines: Vec<u64> = (0..sets)
            .flat_map(|s| (0..set_lines as u64).map(move |w| (s + w * sets) * 64))
            .collect();
        for _ in 0..rounds {
            for &a in &lines {
                c.access(a);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.misses, lines.len() as u64, "only compulsory misses");
    }

    #[test]
    fn hierarchy_latency_is_monotone_in_level(addr in 0u64..10_000_000) {
        let cfg = HierarchyConfig::icelake();
        let mut m = MemoryHierarchy::new(&cfg);
        let first = m.data_access(addr, false);
        prop_assert_eq!(first.supplied_by, Level::Dram);
        let second = m.data_access(addr, false);
        prop_assert!(second.latency < first.latency);
        prop_assert_eq!(second.latency, cfg.l1_latency);
        // The touch lists are ordered inner -> outer.
        prop_assert_eq!(first.touched.first().copied(), Some(Level::L1D));
        prop_assert_eq!(first.touched.last().copied(), Some(Level::Dram));
    }

    #[test]
    fn instruction_side_is_isolated_from_data_side(
        addrs in proptest::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        for &a in &addrs {
            m.instr_access(a);
        }
        let s = m.stats();
        prop_assert_eq!(s.l1d.accesses(), 0, "instruction fetch never touches L1D");
        prop_assert_eq!(s.l1i.accesses(), addrs.len() as u64);
    }

    #[test]
    fn invalidate_forces_next_access_to_miss_l1(addr in 0u64..1_000_000) {
        let mut c = small_cache(4, ReplacementPolicy::Lru);
        c.access(addr);
        c.invalidate(addr);
        prop_assert!(!c.access(addr), "invalidation must evict");
    }
}
