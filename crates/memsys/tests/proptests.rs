//! Property-style tests: cache and hierarchy invariants under arbitrary
//! access streams, driven by a deterministic SplitMix64 generator (no
//! registry dependencies) so they run identically offline.

use scc_isa::rand_prog::SplitMix64;
use scc_memsys::{Cache, CacheConfig, HierarchyConfig, Level, MemoryHierarchy, ReplacementPolicy};

fn small_cache(ways: usize, policy: ReplacementPolicy) -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 64 * ways * 8, // 8 sets
        ways,
        line_bytes: 64,
        replacement: policy,
    })
}

#[test]
fn hits_plus_misses_equals_accesses() {
    let mut rng = SplitMix64::new(11);
    for case in 0..64 {
        let ways = 1 + (case % 7);
        let len = 1 + rng.below(499) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();
        let mut c = small_cache(ways, ReplacementPolicy::Lru);
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), addrs.len() as u64);
        assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }
}

#[test]
fn repeat_access_always_hits() {
    let mut rng = SplitMix64::new(12);
    for case in 0..64 {
        let ways = 1 + (case % 7);
        let addr = rng.next_u64();
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Random] {
            let mut c = small_cache(ways, policy);
            c.access(addr);
            assert!(c.access(addr), "immediate re-access must hit");
            assert!(c.probe(addr));
        }
    }
}

#[test]
fn working_set_within_capacity_never_misses_twice() {
    for set_lines in 1usize..4 {
        for rounds in 2usize..6 {
            // Touch `set_lines` distinct lines per set (≤ ways): after the
            // first round everything hits forever under LRU.
            let ways = 4;
            let mut c = small_cache(ways, ReplacementPolicy::Lru);
            let sets = 8u64;
            let lines: Vec<u64> = (0..sets)
                .flat_map(|s| (0..set_lines as u64).map(move |w| (s + w * sets) * 64))
                .collect();
            for _ in 0..rounds {
                for &a in &lines {
                    c.access(a);
                }
            }
            let s = c.stats();
            assert_eq!(s.misses, lines.len() as u64, "only compulsory misses");
        }
    }
}

#[test]
fn hierarchy_latency_is_monotone_in_level() {
    let mut rng = SplitMix64::new(13);
    for _ in 0..64 {
        let addr = rng.below(10_000_000);
        let cfg = HierarchyConfig::icelake();
        let mut m = MemoryHierarchy::new(&cfg);
        let first = m.data_access(addr, false);
        assert_eq!(first.supplied_by, Level::Dram);
        let second = m.data_access(addr, false);
        assert!(second.latency < first.latency);
        assert_eq!(second.latency, cfg.l1_latency);
        // The touch lists are ordered inner -> outer.
        assert_eq!(first.touched.first().copied(), Some(Level::L1D));
        assert_eq!(first.touched.last().copied(), Some(Level::Dram));
    }
}

#[test]
fn instruction_side_is_isolated_from_data_side() {
    let mut rng = SplitMix64::new(14);
    for _ in 0..32 {
        let len = 1 + rng.below(99) as usize;
        let addrs: Vec<u64> = (0..len).map(|_| rng.below(100_000)).collect();
        let mut m = MemoryHierarchy::new(&HierarchyConfig::icelake());
        for &a in &addrs {
            m.instr_access(a);
        }
        let s = m.stats();
        assert_eq!(s.l1d.accesses(), 0, "instruction fetch never touches L1D");
        assert_eq!(s.l1i.accesses(), addrs.len() as u64);
    }
}

#[test]
fn invalidate_forces_next_access_to_miss_l1() {
    let mut rng = SplitMix64::new(15);
    for _ in 0..64 {
        let addr = rng.below(1_000_000);
        let mut c = small_cache(4, ReplacementPolicy::Lru);
        c.access(addr);
        c.invalidate(addr);
        assert!(!c.access(addr), "invalidation must evict");
    }
}
