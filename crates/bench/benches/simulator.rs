//! Microbenchmarks of the simulator's own components: the compaction
//! engine, the predictors, and end-to-end cycles/second — the numbers a
//! downstream user cares about when sizing experiments.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds with zero registry dependencies.

use scc_core::{CompactionEngine, NoBranchProbe, SccConfig};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::Machine;
use scc_pipeline::{Pipeline, PipelineConfig};
use scc_predictors::{Eves, H3vp, LastValue, ValuePredictor};
use scc_workloads::{workload, Scale};
use std::hint::black_box;
use std::time::Instant;

/// Time `iters` runs of `f` and print mean wall-time per iteration.
fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    // One warmup iteration so lazy init doesn't skew the mean.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("{name:<28} {per:>12.2?}/iter  ({iters} iters)");
}

fn bench_compaction_engine() {
    let w = workload("freqmine", Scale::custom(100)).expect("workload");
    let vp = LastValue::new();
    let entry = w.program.entry();
    bench("compaction/single_pass", 50, || {
        let mut engine = CompactionEngine::new(SccConfig::full());
        black_box(engine.compact(entry, &w.program, &vp, &NoBranchProbe));
    });
}

fn bench_value_predictors() {
    bench("value_predictors/eves", 200, || {
        let mut p = Eves::default_size();
        for i in 0..1000i64 {
            p.train(0x40 + (i % 16) as u64, i * 8);
            black_box(p.predict(0x40 + (i % 16) as u64));
        }
    });
    bench("value_predictors/h3vp", 200, || {
        let mut p = H3vp::default_size();
        for i in 0..1000i64 {
            p.train(0x40 + (i % 16) as u64, i % 3);
            black_box(p.predict(0x40 + (i % 16) as u64));
        }
    });
}

fn bench_end_to_end() {
    let cfg = RandProgConfig::default();
    let p = random_program(7, &cfg);
    bench("end_to_end/interpreter", 10, || {
        let mut m = Machine::new(&p);
        black_box(m.run(2_000_000).expect("runs"));
    });
    bench("end_to_end/pipeline_baseline", 5, || {
        let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
        black_box(pipe.run(20_000_000));
    });
    bench("end_to_end/pipeline_scc", 5, || {
        let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
        black_box(pipe.run(20_000_000));
    });
}

fn main() {
    bench_compaction_engine();
    bench_value_predictors();
    bench_end_to_end();
}
