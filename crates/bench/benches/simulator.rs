//! Criterion microbenchmarks of the simulator's own components: the
//! compaction engine, the predictors, the micro-op cache, and end-to-end
//! cycles/second — the numbers a downstream user cares about when sizing
//! experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scc_core::{CompactionEngine, NoBranchProbe, SccConfig};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::Machine;
use scc_pipeline::{Pipeline, PipelineConfig};
use scc_predictors::{Eves, H3vp, LastValue, ValuePredictor};
use scc_workloads::{workload, Scale};
use std::hint::black_box;

fn bench_compaction_engine(c: &mut Criterion) {
    let w = workload("freqmine", Scale::custom(100)).expect("workload");
    let vp = LastValue::new();
    let entry = w.program.entry();
    let mut g = c.benchmark_group("compaction");
    g.bench_function("single_pass", |b| {
        b.iter(|| {
            let mut engine = CompactionEngine::new(SccConfig::full());
            black_box(engine.compact(entry, &w.program, &vp, &NoBranchProbe))
        })
    });
    g.finish();
}

fn bench_value_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("value_predictors");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("eves_train_predict", |b| {
        b.iter(|| {
            let mut p = Eves::default_size();
            for i in 0..1000i64 {
                p.train(0x40 + (i % 16) as u64, i * 8);
                black_box(p.predict(0x40 + (i % 16) as u64));
            }
        })
    });
    g.bench_function("h3vp_train_predict", |b| {
        b.iter(|| {
            let mut p = H3vp::default_size();
            for i in 0..1000i64 {
                p.train(0x40 + (i % 16) as u64, i % 3);
                black_box(p.predict(0x40 + (i % 16) as u64));
            }
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = RandProgConfig::default();
    let p = random_program(7, &cfg);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("interpreter", |b| {
        b.iter(|| {
            let mut m = Machine::new(&p);
            black_box(m.run(2_000_000).expect("runs"))
        })
    });
    g.bench_function("pipeline_baseline", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
            black_box(pipe.run(20_000_000))
        })
    });
    g.bench_function("pipeline_scc", |b| {
        b.iter(|| {
            let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
            black_box(pipe.run(20_000_000))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compaction_engine, bench_value_predictors, bench_end_to_end);
criterion_main!(benches);
