//! Criterion benches regenerating (small-scale) figure data — one bench
//! per table/figure so `cargo bench` exercises every experiment path, and
//! prints each report once so the numbers are visible in bench logs.
//!
//! Full-scale reports come from the `fig6`…`fig11`, `table1`, and
//! `area_power` binaries (`cargo run --release -p scc-bench --bin fig6`).

use criterion::{criterion_group, criterion_main, Criterion};
use scc_workloads::Scale;
use std::hint::black_box;
use std::sync::Once;
use std::time::Duration;

/// Small but non-trivial scale so `cargo bench` stays minutes, not hours.
fn scale() -> Scale {
    Scale::custom(800)
}

static PRINT_ONCE: Once = Once::new();

fn print_reports() {
    PRINT_ONCE.call_once(|| {
        let s = scale();
        println!("{}", scc_sim::table1());
        println!("{}", scc_bench::fig6_report(s));
        println!("{}", scc_bench::fig7_report(s));
        println!("{}", scc_bench::fig8_report(s));
        println!("{}", scc_bench::fig9_report(s));
        println!("{}", scc_bench::fig10_report(s));
        println!("{}", scc_bench::fig11_report(s));
        println!("{}", scc_bench::area_power_report());
    });
}

fn bench_figures(c: &mut Criterion) {
    print_reports();
    let tiny = Scale::custom(100);
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("table1", |b| b.iter(|| black_box(scc_sim::table1())));
    g.bench_function("fig6", |b| b.iter(|| black_box(scc_bench::fig6_report(tiny))));
    g.bench_function("fig7", |b| b.iter(|| black_box(scc_bench::fig7_report(tiny))));
    g.bench_function("fig8", |b| b.iter(|| black_box(scc_bench::fig8_report(tiny))));
    g.bench_function("fig9", |b| b.iter(|| black_box(scc_bench::fig9_report(tiny))));
    g.bench_function("fig10", |b| b.iter(|| black_box(scc_bench::fig10_report(tiny))));
    g.bench_function("fig11", |b| b.iter(|| black_box(scc_bench::fig11_report(tiny))));
    g.bench_function("area_power", |b| b.iter(|| black_box(scc_bench::area_power_report())));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
