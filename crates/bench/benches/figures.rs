//! Benches regenerating (small-scale) figure data — one timing per
//! table/figure so `cargo bench` exercises every experiment path, and
//! prints each report once so the numbers are visible in bench logs.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds with zero registry dependencies.
//!
//! Full-scale reports come from the `fig6`…`fig11`, `table1`, and
//! `area_power` binaries (`cargo run --release -p scc-bench --bin fig6`).

use scc_workloads::Scale;
use std::hint::black_box;
use std::time::Instant;

/// Small but non-trivial scale so `cargo bench` stays minutes, not hours.
fn scale() -> Scale {
    Scale::custom(800)
}

fn print_reports() {
    let s = scale();
    println!("{}", scc_sim::table1());
    println!("{}", scc_bench::fig6_report(s));
    println!("{}", scc_bench::fig7_report(s));
    println!("{}", scc_bench::fig8_report(s));
    println!("{}", scc_bench::fig9_report(s));
    println!("{}", scc_bench::fig10_report(s));
    println!("{}", scc_bench::fig11_report(s));
    println!("{}", scc_bench::area_power_report());
}

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed() / iters;
    println!("figures/{name:<12} {per:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    print_reports();
    let tiny = Scale::custom(100);
    bench("table1", 3, || drop(black_box(scc_sim::table1())));
    bench("fig6", 3, || drop(black_box(scc_bench::fig6_report(tiny))));
    bench("fig7", 3, || drop(black_box(scc_bench::fig7_report(tiny))));
    bench("fig8", 3, || drop(black_box(scc_bench::fig8_report(tiny))));
    bench("fig9", 3, || drop(black_box(scc_bench::fig9_report(tiny))));
    bench("fig10", 3, || drop(black_box(scc_bench::fig10_report(tiny))));
    bench("fig11", 3, || drop(black_box(scc_bench::fig11_report(tiny))));
    bench("area_power", 3, || drop(black_box(scc_bench::area_power_report())));
}
