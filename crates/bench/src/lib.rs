//! Figure- and table-regeneration harness.
//!
//! One function per table/figure of the paper's evaluation; the `src/bin`
//! binaries print them, and `tests/` sanity-checks their shape (who wins,
//! roughly by how much — not absolute numbers, per DESIGN.md §4).
//!
//! Workload dynamic length is controlled by the `SCC_ITERS` environment
//! variable (default 6000 base loop iterations ≈ 0.5–2M micro-ops per
//! benchmark); simulation parallelism by `SCC_JOBS` (default: available
//! cores). All harnesses share one process-wide result cache, so runs
//! common to several figures (e.g. the 19 baselines) are simulated once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;

use scc_energy::AreaModel;
use scc_sim::report::{geomean, reduction_pct, speedup_pct, Table};
use scc_sim::runner::{Job, Runner};
use scc_sim::{OptLevel, SimOptions, SimResult};
use scc_predictors::ValuePredictorKind;
use scc_workloads::{all_workloads, Scale, Suite, Workload};
use std::sync::Arc;

/// The harness knobs that used to be ambient environment reads, as an
/// explicit config. The `SCC_ITERS` / `SCC_JOBS` environment variables
/// are consulted exactly once, by [`BenchConfig::from_env`] at each
/// binary's edge — library code (and any embedder) works only with the
/// explicit fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchConfig {
    /// Workload scale in base loop iterations (`SCC_ITERS`).
    pub scale: Scale,
    /// Worker-pool size (`SCC_JOBS`).
    pub jobs: usize,
}

impl BenchConfig {
    /// Default workload scale (≈ 0.5–2M micro-ops per benchmark).
    pub const DEFAULT_ITERS: i64 = 6000;

    /// An explicit configuration (no environment involved).
    pub fn new(scale: Scale, jobs: usize) -> BenchConfig {
        BenchConfig { scale, jobs: jobs.max(1) }
    }

    /// Resolves `SCC_ITERS` (default [`Self::DEFAULT_ITERS`]) and
    /// `SCC_JOBS` (default: available cores) — the binaries' single
    /// environment read.
    pub fn from_env() -> BenchConfig {
        let iters = std::env::var("SCC_ITERS")
            .ok()
            .and_then(|v| v.parse::<i64>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(Self::DEFAULT_ITERS);
        BenchConfig { scale: Scale::custom(iters), jobs: scc_sim::scc_jobs() }
    }

    /// The cached runner sized to this config.
    pub fn runner(&self) -> Runner {
        Runner::with_jobs(self.jobs)
    }
}

/// Writes the accumulated simulation-throughput log to
/// `results/BENCH_throughput.json` (the figure binaries call this after
/// printing their report).
pub fn emit_throughput() {
    match scc_sim::runner::write_throughput_json("results/BENCH_throughput.json") {
        Ok(_) => eprintln!("wrote results/BENCH_throughput.json"),
        Err(e) => eprintln!("could not write results/BENCH_throughput.json: {e}"),
    }
}

/// Runs every workload at the given levels; results indexed
/// `[workload][level]`.
pub fn run_levels(scale: Scale, levels: &[OptLevel]) -> Vec<(Workload, Vec<Arc<SimResult>>)> {
    run_levels_with(&Runner::new(), scale, levels)
}

/// [`run_levels`] on an explicit runner (the determinism tests pass a
/// serial uncached one).
pub fn run_levels_with(
    runner: &Runner,
    scale: Scale,
    levels: &[OptLevel],
) -> Vec<(Workload, Vec<Arc<SimResult>>)> {
    let workloads = all_workloads(scale);
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| levels.iter().map(move |&level| Job::new(w, &SimOptions::new(level))))
        .collect();
    let results = runner.run(&jobs);
    workloads
        .into_iter()
        .zip(results.chunks(levels.len()))
        .map(|(w, chunk)| (w, chunk.to_vec()))
        .collect()
}

fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

fn mean_label(suite: Option<Suite>) -> &'static str {
    match suite {
        None => "GEOMEAN(all)",
        Some(Suite::Parsec) => "GEOMEAN(parsec)",
        Some(Suite::Guest) => "GEOMEAN(guest)",
        _ => "GEOMEAN(spec)",
    }
}

fn suite_filter(w: &Workload, suite: Option<Suite>) -> bool {
    match suite {
        None => true,
        Some(Suite::Parsec) => w.suite == Suite::Parsec,
        Some(Suite::Guest) => w.suite == Suite::Guest,
        _ => w.suite.is_spec(),
    }
}

/// Figure 6 (top, middle, bottom): committed micro-op reduction,
/// normalized execution time, and squash overhead for each optimization
/// level relative to the baseline.
pub fn fig6_report(scale: Scale) -> String {
    fig6_report_with(&Runner::new(), scale)
}

/// [`fig6_report`] on an explicit runner.
pub fn fig6_report_with(runner: &Runner, scale: Scale) -> String {
    let levels = OptLevel::all();
    let data = run_levels_with(runner, scale, &levels);
    let mut out = String::new();

    out.push_str("== Figure 6 (top): committed micro-op reduction vs baseline ==\n");
    let mut t = Table::new(&[
        "benchmark", "partitioned", "move-elim", "fold+prop", "branch-fold", "full-scc",
    ]);
    for (w, rs) in &data {
        let base = rs[0].uops();
        let cells: Vec<String> = (1..6)
            .map(|i| pct(reduction_pct(base, rs[i].uops())))
            .collect();
        let mut row = vec![w.name.to_string()];
        row.extend(cells);
        t.row(&row);
    }
    for suite in [Some(Suite::SpecInt), Some(Suite::Parsec), Some(Suite::Guest)] {
        let mut row = vec![mean_label(suite).to_string()];
        for i in 1..6 {
            let vals: Vec<f64> = data
                .iter()
                .filter(|(w, _)| suite_filter(w, suite))
                .map(|(_, rs)| rs[i].uops() as f64 / rs[0].uops() as f64)
                .collect();
            row.push(pct((1.0 - geomean(vals)) * 100.0));
        }
        t.row(&row);
    }
    out.push_str(&t.render());

    out.push_str("\n== Figure 6 (middle): normalized execution time (lower is better) ==\n");
    let mut t = Table::new(&[
        "benchmark", "partitioned", "move-elim", "fold+prop", "branch-fold", "full-scc",
    ]);
    for (w, rs) in &data {
        let base = rs[0].cycles() as f64;
        let mut row = vec![w.name.to_string()];
        for r in &rs[1..6] {
            row.push(format!("{:.3}", r.cycles() as f64 / base));
        }
        t.row(&row);
    }
    for suite in [Some(Suite::SpecInt), Some(Suite::Parsec), Some(Suite::Guest)] {
        let mut row = vec![mean_label(suite).to_string()];
        for i in 1..6 {
            let vals: Vec<f64> = data
                .iter()
                .filter(|(w, _)| suite_filter(w, suite))
                .map(|(_, rs)| rs[i].cycles() as f64 / rs[0].cycles() as f64)
                .collect();
            row.push(format!("{:.3}", geomean(vals)));
        }
        t.row(&row);
    }
    out.push_str(&t.render());

    out.push_str("\n== Figure 6 (bottom): squash overhead (squashed / fetched uops) ==\n");
    let mut t = Table::new(&["benchmark", "baseline", "full-scc", "scc-data", "scc-ctrl"]);
    for (w, rs) in &data {
        t.row(&[
            w.name.to_string(),
            format!("{:.3}", rs[0].stats.squash_overhead()),
            format!("{:.3}", rs[5].stats.squash_overhead()),
            format!("{}", rs[5].stats.scc_data_squashes),
            format!("{}", rs[5].stats.scc_control_squashes),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 7: micro-ops delivered by each front-end source, baseline vs
/// full SCC.
pub fn fig7_report(scale: Scale) -> String {
    fig7_report_with(&Runner::new(), scale)
}

/// [`fig7_report`] on an explicit runner.
pub fn fig7_report_with(runner: &Runner, scale: Scale) -> String {
    let data = run_levels_with(runner, scale, &[OptLevel::Baseline, OptLevel::Full]);
    let mut out = String::new();
    out.push_str("== Figure 7: uops by fetch source (baseline | SCC) ==\n");
    let mut t = Table::new(&[
        "benchmark", "b.icache", "b.unopt", "s.icache", "s.unopt", "s.opt", "opt-share",
    ]);
    for (w, rs) in &data {
        let (b, s) = (&rs[0].stats, &rs[1].stats);
        let total = (s.uops_from_icache + s.uops_from_unopt + s.uops_from_opt).max(1);
        t.row(&[
            w.name.to_string(),
            b.uops_from_icache.to_string(),
            b.uops_from_unopt.to_string(),
            s.uops_from_icache.to_string(),
            s.uops_from_unopt.to_string(),
            s.uops_from_opt.to_string(),
            format!("{:.0}%", 100.0 * s.uops_from_opt as f64 / total as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 8: normalized energy, baseline vs full SCC.
pub fn fig8_report(scale: Scale) -> String {
    fig8_report_with(&Runner::new(), scale)
}

/// [`fig8_report`] on an explicit runner.
pub fn fig8_report_with(runner: &Runner, scale: Scale) -> String {
    let data = run_levels_with(runner, scale, &[OptLevel::Baseline, OptLevel::Full]);
    let mut out = String::new();
    out.push_str("== Figure 8: normalized energy (SCC / baseline, lower is better) ==\n");
    let mut t = Table::new(&["benchmark", "baseline mJ", "scc mJ", "normalized", "savings"]);
    for (w, rs) in &data {
        let (b, s) = (rs[0].energy_pj(), rs[1].energy_pj());
        t.row(&[
            w.name.to_string(),
            format!("{:.3}", b / 1e9),
            format!("{:.3}", s / 1e9),
            format!("{:.3}", s / b),
            pct((1.0 - s / b) * 100.0),
        ]);
    }
    for suite in [Some(Suite::SpecInt), Some(Suite::Parsec), Some(Suite::Guest), None] {
        let vals: Vec<f64> = data
            .iter()
            .filter(|(w, _)| suite_filter(w, suite))
            .map(|(_, rs)| rs[1].energy_pj() / rs[0].energy_pj())
            .collect();
        t.row(&[
            mean_label(suite).to_string(),
            "-".into(),
            "-".into(),
            format!("{:.3}", geomean(vals.iter().copied())),
            pct((1.0 - geomean(vals)) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 9: H3VP vs EVES under full SCC — speedup over baseline,
/// invariant validation failures, squash overhead.
pub fn fig9_report(scale: Scale) -> String {
    fig9_report_with(&Runner::new(), scale)
}

/// [`fig9_report`] on an explicit runner.
pub fn fig9_report_with(runner: &Runner, scale: Scale) -> String {
    let workloads = all_workloads(scale);
    let mut out = String::new();
    out.push_str("== Figure 9: value predictor sensitivity (full SCC) ==\n");
    let mut t = Table::new(&[
        "benchmark", "eves-speedup", "h3vp-speedup", "eves-vpfail", "h3vp-vpfail",
        "eves-squash", "h3vp-squash",
    ]);
    let mut eves = SimOptions::new(OptLevel::Full);
    eves.value_predictor = ValuePredictorKind::Eves;
    let mut h3vp = SimOptions::new(OptLevel::Full);
    h3vp.value_predictor = ValuePredictorKind::H3vp;
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| {
            [
                Job::new(w, &SimOptions::new(OptLevel::Baseline)),
                Job::new(w, &eves),
                Job::new(w, &h3vp),
            ]
        })
        .collect();
    let results = runner.run(&jobs);
    for (w, rs) in workloads.iter().zip(results.chunks(3)) {
        let (base, re, rh) = (&rs[0], &rs[1], &rs[2]);
        t.row(&[
            w.name.to_string(),
            pct(speedup_pct(base.cycles(), re.cycles())),
            pct(speedup_pct(base.cycles(), rh.cycles())),
            re.stats.invariants_failed.to_string(),
            rh.stats.invariants_failed.to_string(),
            format!("{:.3}", re.stats.squash_overhead()),
            format!("{:.3}", rh.stats.squash_overhead()),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 10: optimized-partition size sensitivity (12/24/36 of 48 sets).
pub fn fig10_report(scale: Scale) -> String {
    fig10_report_with(&Runner::new(), scale)
}

/// [`fig10_report`] on an explicit runner.
pub fn fig10_report_with(runner: &Runner, scale: Scale) -> String {
    let workloads = all_workloads(scale);
    let splits = [12usize, 24, 36];
    let mut out = String::new();
    out.push_str("== Figure 10: optimized-partition size (normalized time vs baseline) ==\n");
    let mut t = Table::new(&["benchmark", "opt=12", "opt=24", "opt=36"]);
    let mut sums = vec![Vec::new(); splits.len()];
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| {
            std::iter::once(Job::new(w, &SimOptions::new(OptLevel::Baseline))).chain(
                splits.iter().map(move |&sets| {
                    let mut o = SimOptions::new(OptLevel::Full);
                    o.opt_partition_sets = sets;
                    Job::new(w, &o)
                }),
            )
        })
        .collect();
    let results = runner.run(&jobs);
    for (w, rs) in workloads.iter().zip(results.chunks(1 + splits.len())) {
        let base = &rs[0];
        let mut row = vec![w.name.to_string()];
        for (i, r) in rs[1..].iter().enumerate() {
            let norm = r.cycles() as f64 / base.cycles() as f64;
            sums[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec![mean_label(None).to_string()];
    for vals in &sums {
        row.push(format!("{:.3}", geomean(vals.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Figure 11: constant-width restriction sensitivity (8/16/32 bits vs
/// unrestricted): micro-op reduction and normalized time, plus live-out
/// carry rates (§VII-C).
pub fn fig11_report(scale: Scale) -> String {
    fig11_report_with(&Runner::new(), scale)
}

/// [`fig11_report`] on an explicit runner.
pub fn fig11_report_with(runner: &Runner, scale: Scale) -> String {
    let workloads = all_workloads(scale);
    let widths: [Option<u32>; 4] = [Some(8), Some(16), Some(32), None];
    let mut out = String::new();
    out.push_str("== Figure 11: constant width restriction (full SCC) ==\n");
    let mut t = Table::new(&[
        "benchmark", "red.w8", "red.w16", "red.w32", "red.unres", "time.w8", "time.w16",
        "time.w32", "time.unres", "liveout%",
    ]);
    let mut norm_time = vec![Vec::new(); widths.len()];
    let mut reductions = vec![Vec::new(); widths.len()];
    let jobs: Vec<Job> = workloads
        .iter()
        .flat_map(|w| {
            std::iter::once(Job::new(w, &SimOptions::new(OptLevel::Baseline))).chain(
                widths.iter().map(move |&width| {
                    let mut o = SimOptions::new(OptLevel::Full);
                    o.max_constant_width = width;
                    Job::new(w, &o)
                }),
            )
        })
        .collect();
    let results = runner.run(&jobs);
    for (w, rs) in workloads.iter().zip(results.chunks(1 + widths.len())) {
        let base = &rs[0];
        let mut row = vec![w.name.to_string()];
        let mut times = Vec::new();
        let mut liveout_pct = 0.0;
        for (i, (&width, r)) in widths.iter().zip(&rs[1..]).enumerate() {
            let red = reduction_pct(base.uops(), r.uops());
            reductions[i].push(r.uops() as f64 / base.uops() as f64);
            row.push(pct(red));
            let nt = r.cycles() as f64 / base.cycles() as f64;
            norm_time[i].push(nt);
            times.push(format!("{nt:.3}"));
            if width.is_none() {
                liveout_pct = 100.0 * r.stats.committed_ghosts as f64
                    / r.stats.committed_uops.max(1) as f64;
            }
        }
        row.extend(times);
        row.push(format!("{liveout_pct:.2}%"));
        t.row(&row);
    }
    let mut row = vec![mean_label(None).to_string()];
    for vals in &reductions {
        row.push(pct((1.0 - geomean(vals.iter().copied())) * 100.0));
    }
    for vals in &norm_time {
        row.push(format!("{:.3}", geomean(vals.iter().copied())));
    }
    row.push("-".into());
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// §VII-B: SCC area and peak-power overheads.
pub fn area_power_report() -> String {
    let a = AreaModel::icelake();
    let mut out = String::new();
    out.push_str("== SCC area and peak power overheads (per core) ==\n");
    let mut t = Table::new(&["structure", "area (mm^2)"]);
    t.row(&["SCC front-end ALU".into(), format!("{:.3}", a.scc_alu_mm2)]);
    t.row(&["register context table".into(), format!("{:.3}", a.scc_rct_mm2)]);
    t.row(&["doubled predictor ports".into(), format!("{:.3}", a.pred_ports_mm2)]);
    t.row(&["extended tag arrays".into(), format!("{:.3}", a.tag_ext_mm2)]);
    t.row(&["request queue + write buffer".into(), format!("{:.3}", a.buffers_mm2)]);
    t.row(&["SCC total".into(), format!("{:.3}", a.scc_mm2())]);
    t.row(&["baseline core".into(), format!("{:.3}", a.core_mm2)]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\narea overhead: {:.2}%  (paper: 1.5%)\npeak power overhead: {:.2}%  (paper: 0.62%)\n",
        100.0 * a.area_overhead(),
        100.0 * a.peak_power_overhead()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_power_matches_paper() {
        let r = area_power_report();
        assert!(r.contains("area overhead: 1.4") || r.contains("area overhead: 1.5"));
        assert!(r.contains("peak power overhead: 0.6"));
    }

    #[test]
    fn bench_config_resolves_env_once_with_sane_defaults() {
        // Not set in tests: defaults apply.
        let cfg = BenchConfig::from_env();
        assert!(cfg.scale.iters >= 1);
        assert!(cfg.jobs >= 1);
        assert_eq!(cfg.runner().jobs(), cfg.jobs);
        // Explicit construction never touches the environment.
        let explicit = BenchConfig::new(Scale::custom(123), 0);
        assert_eq!(explicit.scale.iters, 123);
        assert_eq!(explicit.jobs, 1, "worker count is clamped to at least 1");
    }
}
