//! Ablation studies for the design choices DESIGN.md §6 calls out:
//! confidence threshold, compaction-unit resources (request queue, write
//! buffer), hotness decay, and classic value-prediction forwarding.
//!
//! Run on a representative subset (two big winners, one mixed, one
//! memory-bound, one FP) to keep each sweep minutes, not hours.

use scc_core::SccConfig;
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig};
use scc_sim::report::{geomean, Table};
use scc_uopcache::UopCacheConfig;
use scc_workloads::{workload, Scale, Workload};

const SUBSET: [&str; 5] = ["perlbench", "freqmine", "gcc", "mcf", "lbm"];

fn subset(scale: Scale) -> Vec<Workload> {
    SUBSET
        .iter()
        .map(|n| workload(n, scale).expect("known workload"))
        .collect()
}

fn cycles(w: &Workload, cfg: PipelineConfig) -> u64 {
    let mut pipe = Pipeline::new(&w.program, cfg);
    let res = pipe.run(400_000_000);
    assert_eq!(res.outcome, scc_pipeline::RunOutcome::Halted, "{} did not halt", w.name);
    res.stats.cycles
}

fn scc_cfg(mutate: impl Fn(&mut SccConfig)) -> PipelineConfig {
    let mut scc = SccConfig::full();
    mutate(&mut scc);
    PipelineConfig { frontend: FrontendMode::scc(scc), ..PipelineConfig::baseline() }
}

/// Sweeps the SCC probe confidence threshold. The paper runs SCC at 5 —
/// far more aggressive than the 15 used for plain value forwarding — and
/// reports "the best performance benefits are derived through aggressive
/// speculation".
pub fn ablate_confidence_threshold(scale: Scale) -> String {
    let thresholds = [3u8, 5, 9, 15];
    let mut out = String::new();
    out.push_str("== Ablation: SCC confidence threshold (normalized time vs baseline) ==\n");
    let mut t = Table::new(&["benchmark", "t=3", "t=5 (paper)", "t=9", "t=15"]);
    let mut cols = vec![Vec::new(); thresholds.len()];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let mut row = vec![w.name.to_string()];
        for (i, &th) in thresholds.iter().enumerate() {
            let c = cycles(&w, scc_cfg(|s| s.confidence_threshold = th));
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Sweeps the compaction request queue depth. The paper: "even a request
/// queue with as low as 6 entries is capable of identifying several hot
/// code regions".
pub fn ablate_request_queue(scale: Scale) -> String {
    let depths = [1usize, 2, 6, 16];
    let mut out = String::new();
    out.push_str("== Ablation: request queue depth (normalized time vs baseline) ==\n");
    let mut t = Table::new(&["benchmark", "q=1", "q=2", "q=6 (paper)", "q=16"]);
    let mut cols = vec![Vec::new(); depths.len()];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let mut row = vec![w.name.to_string()];
        for (i, &q) in depths.iter().enumerate() {
            let c = cycles(&w, scc_cfg(|s| s.request_queue_len = q));
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Sweeps the write-buffer (maximum stream length) size; the paper sizes
/// it at 18 micro-ops, the 3-way region capacity.
pub fn ablate_write_buffer(scale: Scale) -> String {
    let sizes = [6usize, 12, 18, 30];
    let mut out = String::new();
    out.push_str("== Ablation: write buffer size (normalized time vs baseline) ==\n");
    let mut t = Table::new(&["benchmark", "wb=6", "wb=12", "wb=18 (paper)", "wb=30"]);
    let mut cols = vec![Vec::new(); sizes.len()];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let mut row = vec![w.name.to_string()];
        for (i, &n) in sizes.iter().enumerate() {
            let c = cycles(&w, scc_cfg(|s| s.write_buffer_uops = n));
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Sweeps the optimized partition's hotness decay period (paper: tuned
/// to 3 cycles for optimized lines, 28 for unoptimized).
pub fn ablate_hotness_decay(scale: Scale) -> String {
    let periods = [1u64, 3, 9, 28];
    let mut out = String::new();
    out.push_str("== Ablation: optimized-partition hotness decay (normalized time) ==\n");
    let mut t = Table::new(&["benchmark", "d=1", "d=3 (paper)", "d=9", "d=28"]);
    let mut cols = vec![Vec::new(); periods.len()];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let mut row = vec![w.name.to_string()];
        for (i, &d) in periods.iter().enumerate() {
            let cfg = PipelineConfig {
                frontend: FrontendMode::Scc {
                    unopt: UopCacheConfig::unopt_partition(24),
                    opt: UopCacheConfig { decay_period: d, ..UopCacheConfig::opt_partition(24) },
                    scc: SccConfig::full(),
                },
                ..PipelineConfig::baseline()
            };
            let c = cycles(&w, cfg);
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Classic value-prediction forwarding (the paper's baseline feature) vs
/// the plain baseline vs SCC — quantifies how much of SCC's win plain
/// forwarding could claim.
pub fn ablate_vp_forwarding(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("== Ablation: classic VP forwarding vs SCC (normalized time) ==\n");
    let mut t = Table::new(&["benchmark", "baseline+vpfwd", "full-scc", "scc+vpfwd"]);
    let mut cols = vec![Vec::new(); 3];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let configs = [
            PipelineConfig::baseline_with_vp_forwarding(),
            PipelineConfig::scc_full(),
            PipelineConfig { vp_forwarding: Some(15), ..PipelineConfig::scc_full() },
        ];
        let mut row = vec![w.name.to_string()];
        for (i, cfg) in configs.into_iter().enumerate() {
            let c = cycles(&w, cfg);
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// The paper's future-work extension: folding complex integer operations
/// (`mul`/`div`/`rem`) in the front-end ALU.
pub fn ablate_future_work(scale: Scale) -> String {
    use scc_core::OptFlags;
    let mut out = String::new();
    out.push_str("== Ablation: future-work complex-ALU folding (normalized time) ==\n");
    let mut t = Table::new(&["benchmark", "full-scc (paper)", "+complex-alu"]);
    let mut cols = vec![Vec::new(); 2];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let paper = cycles(&w, scc_cfg(|_| {}));
        let future = cycles(&w, scc_cfg(|s| s.opts = OptFlags::future_work()));
        let (np, nf) = (paper as f64 / base as f64, future as f64 / base as f64);
        cols[0].push(np);
        cols[1].push(nf);
        t.row(&[w.name.to_string(), format!("{np:.3}"), format!("{nf:.3}")]);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Micro-fusion on/off (the artifact's `--enable-micro-fusion`), for the
/// baseline and for full SCC.
pub fn ablate_micro_fusion(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("== Ablation: micro-fusion (normalized time vs fused baseline) ==\n");
    let mut t = Table::new(&["benchmark", "base-nofuse", "scc-fused", "scc-nofuse"]);
    let mut cols = vec![Vec::new(); 3];
    for w in subset(scale) {
        let base = cycles(&w, PipelineConfig::baseline());
        let mut base_nf = PipelineConfig::baseline();
        base_nf.core.micro_fusion = false;
        let mut scc_nf = PipelineConfig::scc_full();
        scc_nf.core.micro_fusion = false;
        let configs = [base_nf, PipelineConfig::scc_full(), scc_nf];
        let mut row = vec![w.name.to_string()];
        for (i, cfg) in configs.into_iter().enumerate() {
            let c = cycles(&w, cfg);
            let norm = c as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// All ablations, concatenated.
pub fn full_report(scale: Scale) -> String {
    [
        ablate_confidence_threshold(scale),
        ablate_request_queue(scale),
        ablate_write_buffer(scale),
        ablate_hotness_decay(scale),
        ablate_vp_forwarding(scale),
        ablate_future_work(scale),
        ablate_micro_fusion(scale),
    ]
    .join("\n")
}
