//! Ablation studies for the design choices DESIGN.md §6 calls out:
//! confidence threshold, compaction-unit resources (request queue, write
//! buffer), hotness decay, and classic value-prediction forwarding.
//!
//! Run on a representative subset (two big winners, one mixed, one
//! memory-bound, one FP) to keep each sweep minutes, not hours. All
//! sweeps go through the shared experiment runner, so the per-workload
//! baselines are simulated once for the whole ablation suite (and shared
//! with any figure run in the same process).

use scc_core::SccConfig;
use scc_pipeline::{FrontendMode, PipelineConfig};
use scc_sim::report::{geomean, Table};
use scc_sim::runner::{resolve_workload, Job, Runner};
use scc_sim::OptLevel;
use scc_uopcache::UopCacheConfig;
use scc_workloads::{Scale, Workload};

const SUBSET: [&str; 5] = ["perlbench", "freqmine", "gcc", "mcf", "lbm"];

fn subset(scale: Scale) -> Vec<Workload> {
    SUBSET
        .iter()
        .map(|n| resolve_workload(n, scale).unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

fn scc_cfg(mutate: impl Fn(&mut SccConfig)) -> PipelineConfig {
    let mut scc = SccConfig::full();
    mutate(&mut scc);
    PipelineConfig { frontend: FrontendMode::scc(scc), ..PipelineConfig::baseline() }
}

/// Runs `variants(w)` plus the plain baseline for every subset workload
/// as one batch, then renders the usual normalized-time table (one
/// column per variant, GEOMEAN row at the bottom).
fn normalized_sweep(
    runner: &Runner,
    scale: Scale,
    title: &str,
    header: &[&str],
    variants: &dyn Fn(&Workload) -> Vec<PipelineConfig>,
) -> String {
    let ws = subset(scale);
    let nvar = header.len() - 1;
    let mut jobs: Vec<Job> = Vec::new();
    for w in &ws {
        jobs.push(Job::from_config(w, PipelineConfig::baseline(), OptLevel::Baseline));
        let cfgs = variants(w);
        assert_eq!(cfgs.len(), nvar, "one config per variant column");
        for cfg in cfgs {
            let level =
                if cfg.frontend.has_scc() { OptLevel::Full } else { OptLevel::Baseline };
            jobs.push(Job::from_config(w, cfg, level));
        }
    }
    let results = runner.run(&jobs);

    let mut out = String::new();
    out.push_str(title);
    let mut t = Table::new(header);
    let mut cols = vec![Vec::new(); nvar];
    for (w, rs) in ws.iter().zip(results.chunks(1 + nvar)) {
        let base = rs[0].cycles();
        let mut row = vec![w.name.to_string()];
        for (i, r) in rs[1..].iter().enumerate() {
            let norm = r.cycles() as f64 / base as f64;
            cols[i].push(norm);
            row.push(format!("{norm:.3}"));
        }
        t.row(&row);
    }
    let mut row = vec!["GEOMEAN".to_string()];
    for c in &cols {
        row.push(format!("{:.3}", geomean(c.iter().copied())));
    }
    t.row(&row);
    out.push_str(&t.render());
    out
}

/// Sweeps the SCC probe confidence threshold. The paper runs SCC at 5 —
/// far more aggressive than the 15 used for plain value forwarding — and
/// reports "the best performance benefits are derived through aggressive
/// speculation".
pub fn ablate_confidence_threshold(scale: Scale) -> String {
    ablate_confidence_threshold_with(&Runner::new(), scale)
}

/// [`ablate_confidence_threshold`] on an explicit runner.
pub fn ablate_confidence_threshold_with(runner: &Runner, scale: Scale) -> String {
    let thresholds = [3u8, 5, 9, 15];
    normalized_sweep(
        runner,
        scale,
        "== Ablation: SCC confidence threshold (normalized time vs baseline) ==\n",
        &["benchmark", "t=3", "t=5 (paper)", "t=9", "t=15"],
        &|_| {
            thresholds
                .iter()
                .map(|&th| scc_cfg(|s| s.confidence_threshold = th))
                .collect()
        },
    )
}

/// Sweeps the compaction request queue depth. The paper: "even a request
/// queue with as low as 6 entries is capable of identifying several hot
/// code regions".
pub fn ablate_request_queue(scale: Scale) -> String {
    ablate_request_queue_with(&Runner::new(), scale)
}

/// [`ablate_request_queue`] on an explicit runner.
pub fn ablate_request_queue_with(runner: &Runner, scale: Scale) -> String {
    let depths = [1usize, 2, 6, 16];
    normalized_sweep(
        runner,
        scale,
        "== Ablation: request queue depth (normalized time vs baseline) ==\n",
        &["benchmark", "q=1", "q=2", "q=6 (paper)", "q=16"],
        &|_| depths.iter().map(|&q| scc_cfg(|s| s.request_queue_len = q)).collect(),
    )
}

/// Sweeps the write-buffer (maximum stream length) size; the paper sizes
/// it at 18 micro-ops, the 3-way region capacity.
pub fn ablate_write_buffer(scale: Scale) -> String {
    ablate_write_buffer_with(&Runner::new(), scale)
}

/// [`ablate_write_buffer`] on an explicit runner.
pub fn ablate_write_buffer_with(runner: &Runner, scale: Scale) -> String {
    let sizes = [6usize, 12, 18, 30];
    normalized_sweep(
        runner,
        scale,
        "== Ablation: write buffer size (normalized time vs baseline) ==\n",
        &["benchmark", "wb=6", "wb=12", "wb=18 (paper)", "wb=30"],
        &|_| sizes.iter().map(|&n| scc_cfg(|s| s.write_buffer_uops = n)).collect(),
    )
}

/// Sweeps the optimized partition's hotness decay period (paper: tuned
/// to 3 cycles for optimized lines, 28 for unoptimized).
pub fn ablate_hotness_decay(scale: Scale) -> String {
    ablate_hotness_decay_with(&Runner::new(), scale)
}

/// [`ablate_hotness_decay`] on an explicit runner.
pub fn ablate_hotness_decay_with(runner: &Runner, scale: Scale) -> String {
    let periods = [1u64, 3, 9, 28];
    normalized_sweep(
        runner,
        scale,
        "== Ablation: optimized-partition hotness decay (normalized time) ==\n",
        &["benchmark", "d=1", "d=3 (paper)", "d=9", "d=28"],
        &|_| {
            periods
                .iter()
                .map(|&d| PipelineConfig {
                    frontend: FrontendMode::Scc {
                        unopt: UopCacheConfig::unopt_partition(24),
                        opt: UopCacheConfig {
                            decay_period: d,
                            ..UopCacheConfig::opt_partition(24)
                        },
                        scc: SccConfig::full(),
                    },
                    ..PipelineConfig::baseline()
                })
                .collect()
        },
    )
}

/// Classic value-prediction forwarding (the paper's baseline feature) vs
/// the plain baseline vs SCC — quantifies how much of SCC's win plain
/// forwarding could claim.
pub fn ablate_vp_forwarding(scale: Scale) -> String {
    ablate_vp_forwarding_with(&Runner::new(), scale)
}

/// [`ablate_vp_forwarding`] on an explicit runner.
pub fn ablate_vp_forwarding_with(runner: &Runner, scale: Scale) -> String {
    normalized_sweep(
        runner,
        scale,
        "== Ablation: classic VP forwarding vs SCC (normalized time) ==\n",
        &["benchmark", "baseline+vpfwd", "full-scc", "scc+vpfwd"],
        &|_| {
            vec![
                PipelineConfig::baseline_with_vp_forwarding(),
                PipelineConfig::scc_full(),
                PipelineConfig { vp_forwarding: Some(15), ..PipelineConfig::scc_full() },
            ]
        },
    )
}

/// The paper's future-work extension: folding complex integer operations
/// (`mul`/`div`/`rem`) in the front-end ALU.
pub fn ablate_future_work(scale: Scale) -> String {
    ablate_future_work_with(&Runner::new(), scale)
}

/// [`ablate_future_work`] on an explicit runner.
pub fn ablate_future_work_with(runner: &Runner, scale: Scale) -> String {
    use scc_core::OptFlags;
    normalized_sweep(
        runner,
        scale,
        "== Ablation: future-work complex-ALU folding (normalized time) ==\n",
        &["benchmark", "full-scc (paper)", "+complex-alu"],
        &|_| vec![scc_cfg(|_| {}), scc_cfg(|s| s.opts = OptFlags::future_work())],
    )
}

/// Micro-fusion on/off (the artifact's `--enable-micro-fusion`), for the
/// baseline and for full SCC.
pub fn ablate_micro_fusion(scale: Scale) -> String {
    ablate_micro_fusion_with(&Runner::new(), scale)
}

/// [`ablate_micro_fusion`] on an explicit runner.
pub fn ablate_micro_fusion_with(runner: &Runner, scale: Scale) -> String {
    normalized_sweep(
        runner,
        scale,
        "== Ablation: micro-fusion (normalized time vs fused baseline) ==\n",
        &["benchmark", "base-nofuse", "scc-fused", "scc-nofuse"],
        &|_| {
            let mut base_nf = PipelineConfig::baseline();
            base_nf.core.micro_fusion = false;
            let mut scc_nf = PipelineConfig::scc_full();
            scc_nf.core.micro_fusion = false;
            vec![base_nf, PipelineConfig::scc_full(), scc_nf]
        },
    )
}

/// All ablations, concatenated.
pub fn full_report(scale: Scale) -> String {
    full_report_with(&Runner::new(), scale)
}

/// [`full_report`] on an explicit runner.
pub fn full_report_with(runner: &Runner, scale: Scale) -> String {
    [
        ablate_confidence_threshold_with(runner, scale),
        ablate_request_queue_with(runner, scale),
        ablate_write_buffer_with(runner, scale),
        ablate_hotness_decay_with(runner, scale),
        ablate_vp_forwarding_with(runner, scale),
        ablate_future_work_with(runner, scale),
        ablate_micro_fusion_with(runner, scale),
    ]
    .join("\n")
}
