//! Prints the SCC area/peak-power overhead accounting (paper §VII-B).
fn main() {
    print!("{}", scc_bench::area_power_report());
}
