//! Deep-dive diagnostics for one workload at one optimization level.
//!
//! ```text
//! cargo run --release -p scc-bench --bin inspect -- <workload> [level] [iters]
//! ```
//!
//! Levels: baseline | partitioned | move-elim | fold+prop | branch-fold |
//! full-scc (default full-scc).
//!
//! `--audit` re-runs the chosen level with an [`scc_core::AuditLog`]
//! attached and prints the SCC decision histogram plus per-stream
//! assumption counts, reconciled against the pipeline stats. A
//! reconciliation mismatch exits non-zero.

use scc_core::AuditLog;
use scc_isa::trace::shared;
use scc_sim::{run_workload, run_workload_observed, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

fn parse_level(s: &str) -> OptLevel {
    OptLevel::all()
        .into_iter()
        .find(|l| l.label() == s)
        .unwrap_or_else(|| panic!("unknown level {s}; use one of {:?}",
            OptLevel::all().map(|l| l.label())))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("freqmine");
    let level = parse_level(args.get(2).map(String::as_str).unwrap_or("full-scc"));
    let iters = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let w = workload(name, Scale::custom(iters))
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let auditing = std::env::args().any(|a| a == "--audit");
    let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
    let audit = auditing.then(|| shared(AuditLog::new()));
    let r = match &audit {
        Some(log) => run_workload_observed(&w, &SimOptions::new(level), log.clone()),
        None => run_workload(&w, &SimOptions::new(level)),
    };
    let s = &r.stats;
    println!("workload {name} @ {level} (iters {iters}) — {}", w.description);
    println!("cycles            {:>12} (baseline {}, norm {:.3})", s.cycles, base.stats.cycles,
        s.cycles as f64 / base.stats.cycles as f64);
    println!("committed uops    {:>12} (baseline {}, reduction {:+.1}%)",
        s.committed_uops, base.stats.committed_uops,
        100.0 * (1.0 - s.committed_uops as f64 / base.stats.committed_uops as f64));
    println!("ipc               {:>12.3}", s.ipc());
    println!("ghosts/live-outs  {:>12} / {}", s.committed_ghosts, s.live_out_writes);
    println!("fetch icache/unopt/opt {:>8} / {} / {}", s.uops_from_icache, s.uops_from_unopt,
        s.uops_from_opt);
    println!("squashes          {:>12} (uops {}, overhead {:.3})", s.squashes, s.squashed_uops,
        s.squash_overhead());
    println!("  plain-branch    {:>12}", s.branch_squashes);
    println!("  scc-data        {:>12}", s.scc_data_squashes);
    println!("  scc-control     {:>12}", s.scc_control_squashes);
    println!("branches          {:>12} resolved, {} mispredicted", s.branches_resolved,
        s.branches_mispredicted);
    println!("invariants        {:>12} validated, {} failed", s.invariants_validated,
        s.invariants_failed);
    println!("compactions       {:>12} ({} committed, {} discarded, {} aborted)",
        s.compactions, s.streams_committed, s.compactions_discarded, s.compactions_aborted);
    println!("scc busy cycles   {:>12}", s.scc_busy_cycles);
    println!("uop cache unopt   {:?}", s.unopt);
    println!("uop cache opt     {:?}", s.opt);
    println!("hierarchy         l1i {:?} l1d {:?}", s.hierarchy.l1i, s.hierarchy.l1d);
    println!("                  l2 {:?} l3 {:?} dram {}", s.hierarchy.l2, s.hierarchy.l3,
        s.hierarchy.dram);
    println!("energy            {:.3} mJ (baseline {:.3}, norm {:.3})", r.energy_pj() / 1e9,
        base.energy_pj() / 1e9, r.energy_pj() / base.energy_pj());
    if std::env::args().any(|a| a == "--energy") {
        println!("\n== detailed energy (McPAT-style) ==");
        let model = scc_energy::EnergyModel::icelake();
        print!("{}", model.detailed_report(&scc_sim::energy_events(s)));
    }
    if let Some(log) = &audit {
        let log = log.borrow();
        println!("\n== SCC decision audit ==");
        println!("uops scanned      {:>12}", log.decisions());
        for (label, count) in log.decision_histogram() {
            println!("  {label:<15} {count:>12}");
        }
        println!("assumption outcomes by stream (validated / failed-data / failed-control):");
        for (stream, c) in log.per_stream() {
            println!("  stream {stream:#x}: {} / {} / {}", c.validated, c.failed_data,
                c.failed_control);
        }
        let ok = log.validated() == s.invariants_validated
            && log.failed_data() == s.invariants_failed
            && log.failed_control() == s.scc_control_squashes;
        println!(
            "reconciliation    validated {} vs {}, failed-data {} vs {}, failed-control {} vs {} — {}",
            log.validated(), s.invariants_validated, log.failed_data(), s.invariants_failed,
            log.failed_control(), s.scc_control_squashes,
            if ok { "OK" } else { "MISMATCH" });
        if !ok {
            std::process::exit(1);
        }
    }
}
