//! Deep-dive diagnostics for one workload at one optimization level.
//!
//! ```text
//! cargo run --release -p scc-bench --bin inspect -- <workload> [level] [iters]
//! ```
//!
//! Levels: baseline | partitioned | move-elim | fold+prop | branch-fold |
//! full-scc (default full-scc).

use scc_sim::{run_workload, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

fn parse_level(s: &str) -> OptLevel {
    OptLevel::all()
        .into_iter()
        .find(|l| l.label() == s)
        .unwrap_or_else(|| panic!("unknown level {s}; use one of {:?}",
            OptLevel::all().map(|l| l.label())))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("freqmine");
    let level = parse_level(args.get(2).map(String::as_str).unwrap_or("full-scc"));
    let iters = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let w = workload(name, Scale::custom(iters))
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let base = run_workload(&w, &SimOptions::new(OptLevel::Baseline));
    let r = run_workload(&w, &SimOptions::new(level));
    let s = &r.stats;
    println!("workload {name} @ {level} (iters {iters}) — {}", w.description);
    println!("cycles            {:>12} (baseline {}, norm {:.3})", s.cycles, base.stats.cycles,
        s.cycles as f64 / base.stats.cycles as f64);
    println!("committed uops    {:>12} (baseline {}, reduction {:+.1}%)",
        s.committed_uops, base.stats.committed_uops,
        100.0 * (1.0 - s.committed_uops as f64 / base.stats.committed_uops as f64));
    println!("ipc               {:>12.3}", s.ipc());
    println!("ghosts/live-outs  {:>12} / {}", s.committed_ghosts, s.live_out_writes);
    println!("fetch icache/unopt/opt {:>8} / {} / {}", s.uops_from_icache, s.uops_from_unopt,
        s.uops_from_opt);
    println!("squashes          {:>12} (uops {}, overhead {:.3})", s.squashes, s.squashed_uops,
        s.squash_overhead());
    println!("  plain-branch    {:>12}", s.branch_squashes);
    println!("  scc-data        {:>12}", s.scc_data_squashes);
    println!("  scc-control     {:>12}", s.scc_control_squashes);
    println!("branches          {:>12} resolved, {} mispredicted", s.branches_resolved,
        s.branches_mispredicted);
    println!("invariants        {:>12} validated, {} failed", s.invariants_validated,
        s.invariants_failed);
    println!("compactions       {:>12} ({} committed, {} discarded, {} aborted)",
        s.compactions, s.streams_committed, s.compactions_discarded, s.compactions_aborted);
    println!("scc busy cycles   {:>12}", s.scc_busy_cycles);
    println!("uop cache unopt   {:?}", s.unopt);
    println!("uop cache opt     {:?}", s.opt);
    println!("hierarchy         l1i {:?} l1d {:?}", s.hierarchy.l1i, s.hierarchy.l1d);
    println!("                  l2 {:?} l3 {:?} dram {}", s.hierarchy.l2, s.hierarchy.l3,
        s.hierarchy.dram);
    println!("energy            {:.3} mJ (baseline {:.3}, norm {:.3})", r.energy_pj() / 1e9,
        base.energy_pj() / 1e9, r.energy_pj() / base.energy_pj());
    if std::env::args().any(|a| a == "--energy") {
        println!("\n== detailed energy (McPAT-style) ==");
        let model = scc_energy::EnergyModel::icelake();
        print!("{}", model.detailed_report(&scc_sim::energy_events(s)));
    }
}
