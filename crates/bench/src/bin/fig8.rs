//! Regenerates the paper's Figure 8 from the synthetic suite.
fn main() {
    let scale = scc_bench::bench_scale();
    print!("{}", scc_bench::fig8_report(scale));
    scc_bench::emit_throughput();
}
