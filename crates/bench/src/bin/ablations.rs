//! Runs the ablation sweeps for DESIGN.md §6's design choices
//! (confidence threshold, request queue, write buffer, hotness decay,
//! classic VP forwarding) on a representative workload subset.
fn main() {
    let cfg = scc_bench::BenchConfig::from_env();
    print!("{}", scc_bench::ablations::full_report_with(&cfg.runner(), cfg.scale));
    scc_bench::emit_throughput();
}
