//! Runs the ablation sweeps for DESIGN.md §6's design choices
//! (confidence threshold, request queue, write buffer, hotness decay,
//! classic VP forwarding) on a representative workload subset.
fn main() {
    let scale = scc_bench::bench_scale();
    print!("{}", scc_bench::ablations::full_report(scale));
    scc_bench::emit_throughput();
}
