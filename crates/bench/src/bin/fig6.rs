//! Regenerates the paper's Figure 6 from the synthetic suite.
fn main() {
    let cfg = scc_bench::BenchConfig::from_env();
    print!("{}", scc_bench::fig6_report_with(&cfg.runner(), cfg.scale));
    scc_bench::emit_throughput();
}
