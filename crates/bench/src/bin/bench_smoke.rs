//! CI throughput smoke: guards the simulator's host-speed on one
//! memory-bound workload (mcf, serial pointer chase — the event-driven
//! fast-forward's showcase) and one compute-bound one (deepsjeng).
//!
//! Measures simulated micro-ops per host second against the committed
//! snapshot `results/bench_smoke_baseline.json` and fails when a
//! workload regresses by more than the tolerance, so a change that
//! quietly deoptimizes the hot loop (or breaks fast-forward engagement)
//! turns the build red instead of surfacing months later in figure
//! regeneration times.
//!
//! Usage:
//!   bench_smoke                   compare against the committed baseline
//!   bench_smoke --write-baseline  re-measure and overwrite the snapshot
//!
//! `SCC_SMOKE_TOLERANCE` (default 0.20) sets the allowed fractional
//! regression; CI machines of a different class than the one that wrote
//! the baseline can widen it instead of editing the snapshot.

#![forbid(unsafe_code)]

use scc_sim::{run_workload, OptLevel, SimOptions};
use scc_workloads::workload;
use std::time::Instant;

/// Fixed workload scale, independent of `SCC_ITERS`: the committed
/// baseline is only comparable to runs of the same length.
const SMOKE_ITERS: i64 = 2000;
const WORKLOADS: [&str; 2] = ["mcf", "deepsjeng"];
const BASELINE_PATH: &str = "results/bench_smoke_baseline.json";
/// Keep timing per workload above this, repeating runs as needed, so a
/// single-core CI box still gets a stable rate.
const MIN_MEASURE_SECS: f64 = 0.5;

fn measure(name: &str) -> f64 {
    let w = workload(name, scc_workloads::Scale::custom(SMOKE_ITERS))
        .unwrap_or_else(|| panic!("unknown workload {name}"));
    let opts = SimOptions::new(OptLevel::Baseline);
    // Warm up caches, page tables, and the branch predictor of the host.
    let warm = run_workload(&w, &opts);
    let uops_per_run = warm.stats.committed_uops;
    let start = Instant::now();
    let mut runs = 0u64;
    while runs < 3 || start.elapsed().as_secs_f64() < MIN_MEASURE_SECS {
        let r = run_workload(&w, &opts);
        assert_eq!(r.stats.committed_uops, uops_per_run, "non-deterministic run");
        runs += 1;
    }
    (runs * uops_per_run) as f64 / start.elapsed().as_secs_f64()
}

fn render(rates: &[(String, f64)]) -> String {
    let mut out = format!(
        "{{\n  \"schema_version\": 1,\n  \"iters\": {SMOKE_ITERS},\n  \"workloads\": [\n"
    );
    for (i, (name, rate)) in rates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"uops_per_sec\": {rate:.1}}}{}\n",
            if i + 1 < rates.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Minimal extraction of `{"name": ..., "uops_per_sec": ...}` pairs from
/// the baseline document — the one JSON shape this binary both writes
/// and reads, so a scanning parse beats a dependency.
fn parse_baseline(doc: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in doc.split("\"name\":").skip(1) {
        let name = chunk.split('"').nth(1).unwrap_or_default().to_string();
        let rate = chunk
            .split("\"uops_per_sec\":")
            .nth(1)
            .and_then(|r| {
                r.trim_start()
                    .split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                    .next()?
                    .parse::<f64>()
                    .ok()
            })
            .unwrap_or_else(|| panic!("malformed baseline entry for {name}"));
        out.push((name, rate));
    }
    out
}

fn main() {
    let write = std::env::args().any(|a| a == "--write-baseline");
    let tolerance = std::env::var("SCC_SMOKE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.20);

    let rates: Vec<(String, f64)> =
        WORKLOADS.iter().map(|&n| (n.to_string(), measure(n))).collect();

    if write {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(BASELINE_PATH, render(&rates)).expect("write baseline");
        for (name, rate) in &rates {
            println!("{name:<12} {rate:>12.0} uops/sec  (baseline written)");
        }
        return;
    }

    let doc = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        panic!("cannot read {BASELINE_PATH} ({e}); run with --write-baseline first")
    });
    let baseline = parse_baseline(&doc);
    let mut failed = false;
    for (name, rate) in &rates {
        let base = baseline
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_else(|| panic!("{BASELINE_PATH} has no entry for {name}"));
        let delta = rate / base - 1.0;
        let floor = base * (1.0 - tolerance);
        let verdict = if *rate < floor { "REGRESSED" } else { "ok" };
        println!(
            "{name:<12} {rate:>12.0} uops/sec  vs baseline {base:>12.0}  ({:+.1}%)  {verdict}",
            delta * 100.0,
        );
        failed |= *rate < floor;
    }
    if failed {
        eprintln!(
            "bench-smoke: throughput regressed more than {:.0}% on at least one workload",
            tolerance * 100.0
        );
        std::process::exit(1);
    }
}
