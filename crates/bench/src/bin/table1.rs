//! Prints Table I: the modeled microarchitectural configuration.
fn main() {
    println!("== Table I: microarchitectural configuration ==");
    print!("{}", scc_sim::table1());
}
