//! Regenerates the paper's Figure 11 from the synthetic suite.
fn main() {
    let scale = scc_bench::bench_scale();
    print!("{}", scc_bench::fig11_report(scale));
    scc_bench::emit_throughput();
}
