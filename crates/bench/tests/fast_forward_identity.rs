//! Tier-1 contract of event-driven fast-forward: it is a host-speed
//! optimization only. For every seed workload, a fast-forwarded run must
//! produce byte-identical observable output to per-cycle stepping —
//! simulation stats, architectural snapshot, metrics JSON, Chrome trace
//! JSON, and the SCC audit JSONL. Any divergence means a jump skipped a
//! cycle that was not actually a no-op.

use scc_core::AuditLog;
use scc_isa::trace::{shared, Tee};
use scc_sim::trace_export::{metrics_json, ChromeTraceSink};
use scc_sim::{run_workload_observed, OptLevel, SimOptions, SimResult};
use scc_workloads::{all_workloads, Scale, Workload};

/// Runs one workload with full observability attached and returns the
/// result plus the serialized (metrics JSON, trace JSON, audit JSONL)
/// triple.
fn observed_run(w: &Workload, level: OptLevel, fast_forward: bool) -> (SimResult, [String; 3]) {
    let mut opts = SimOptions::new(level);
    opts.fast_forward = fast_forward;
    let trace = shared(ChromeTraceSink::new());
    let audit = shared(AuditLog::new());
    let mut tee = Tee::new();
    tee.push(trace.clone());
    tee.push(audit.clone());
    let res = run_workload_observed(w, &opts, shared(tee));
    let metrics = metrics_json(&res.workload, res.level.label(), &res.stats);
    let (trace, audit) = (trace.borrow().to_json(), audit.borrow().to_jsonl());
    (res, [metrics, trace, audit])
}

#[test]
fn fast_forward_is_invisible_across_all_seed_workloads() {
    // Small scale: each workload runs twice per level, in debug, with
    // strict pipeline invariants checking every squash and wake.
    let scale = Scale::custom(250);
    for w in all_workloads(scale) {
        for level in [OptLevel::Baseline, OptLevel::Full] {
            let (on, on_docs) = observed_run(&w, level, true);
            let (off, off_docs) = observed_run(&w, level, false);
            let tag = format!("{} @ {}", w.name, level.label());
            assert_eq!(on.stats, off.stats, "stats diverged: {tag}");
            assert_eq!(on.snapshot, off.snapshot, "snapshot diverged: {tag}");
            assert_eq!(on.energy, off.energy, "energy diverged: {tag}");
            for (i, kind) in ["metrics JSON", "trace JSON", "audit JSONL"].iter().enumerate() {
                assert_eq!(on_docs[i], off_docs[i], "{kind} diverged: {tag}");
            }
        }
    }
}
