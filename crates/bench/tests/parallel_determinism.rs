//! Tier-1 guarantees of the parallel experiment engine: figure output
//! from the parallel cached path is byte-identical to a serial uncached
//! run, and cached results equal fresh re-runs field for field.

use scc_sim::runner::Runner;
use scc_sim::{run_workload, Job, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

#[test]
fn fig6_parallel_output_is_byte_identical_to_serial() {
    let scale = Scale::custom(350);
    let serial = scc_bench::fig6_report_with(&Runner::serial_uncached(), scale);
    let parallel = scc_bench::fig6_report_with(&Runner::with_jobs(4), scale);
    assert_eq!(serial, parallel, "worker scheduling must not leak into the report");
    // A second parallel run resolves entirely from the result cache and
    // must still render the same bytes.
    let cached = scc_bench::fig6_report_with(&Runner::with_jobs(4), scale);
    assert_eq!(serial, cached);
}

#[test]
fn cached_results_equal_fresh_runs() {
    let scale = Scale::custom(360);
    let w = workload("freqmine", scale).unwrap();
    let opts = SimOptions::new(OptLevel::Full);
    let runner = Runner::new();
    let first = runner.run(&[Job::new(&w, &opts)]);
    let second = runner.run(&[Job::new(&w, &opts)]); // cache hit
    let fresh = run_workload(&w, &opts);
    for r in [&first[0], &second[0]] {
        assert_eq!(r.stats, fresh.stats);
        assert_eq!(r.snapshot, fresh.snapshot);
        assert_eq!(r.energy, fresh.energy);
        assert_eq!(r.level, fresh.level);
        assert_eq!(r.workload, fresh.workload);
    }
}
