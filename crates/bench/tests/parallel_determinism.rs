//! Tier-1 guarantees of the parallel experiment engine: figure output
//! from the parallel cached path is byte-identical to a serial uncached
//! run, cached results equal fresh re-runs field for field, and the
//! observability outputs (Chrome trace, metrics JSON, audit JSONL) are
//! byte-identical regardless of worker count.

use scc_core::AuditLog;
use scc_isa::trace::{shared, Tee};
use scc_sim::runner::Runner;
use scc_sim::trace_export::{metrics_json, ChromeTraceSink};
use scc_sim::{parallel_map, run_workload, run_workload_observed, Job, OptLevel, SimOptions};
use scc_workloads::{workload, Scale};

#[test]
fn fig6_parallel_output_is_byte_identical_to_serial() {
    let scale = Scale::custom(350);
    let serial = scc_bench::fig6_report_with(&Runner::serial_uncached(), scale);
    let parallel = scc_bench::fig6_report_with(&Runner::with_jobs(4), scale);
    assert_eq!(serial, parallel, "worker scheduling must not leak into the report");
    // A second parallel run resolves entirely from the result cache and
    // must still render the same bytes.
    let cached = scc_bench::fig6_report_with(&Runner::with_jobs(4), scale);
    assert_eq!(serial, cached);
}

#[test]
fn cached_results_equal_fresh_runs() {
    let scale = Scale::custom(360);
    let w = workload("freqmine", scale).unwrap();
    let opts = SimOptions::new(OptLevel::Full);
    let runner = Runner::new();
    let first = runner.run(&[Job::new(&w, &opts)]);
    let second = runner.run(&[Job::new(&w, &opts)]); // cache hit
    let fresh = run_workload(&w, &opts);
    for r in [&first[0], &second[0]] {
        assert_eq!(r.stats, fresh.stats);
        assert_eq!(r.snapshot, fresh.snapshot);
        assert_eq!(r.energy, fresh.energy);
        assert_eq!(r.level, fresh.level);
        assert_eq!(r.workload, fresh.workload);
    }
}

/// Runs freqmine at full SCC with a trace sink and an audit log attached
/// and returns the serialized (trace JSON, metrics JSON, audit JSONL)
/// triple. Sinks are built inside the calling worker thread, so this is
/// safe to run under `parallel_map` despite the `Rc`-based sink handles.
fn traced_run(scale: Scale) -> (String, String, String) {
    let w = workload("freqmine", scale).unwrap();
    let opts = SimOptions::new(OptLevel::Full);
    let trace = shared(ChromeTraceSink::new());
    let audit = shared(AuditLog::new());
    let mut tee = Tee::new();
    tee.push(trace.clone());
    tee.push(audit.clone());
    let res = run_workload_observed(&w, &opts, shared(tee));
    let metrics = metrics_json(&res.workload, res.level.label(), &res.stats);
    let (trace, audit) = (trace.borrow().to_json(), audit.borrow().to_jsonl());
    (trace, metrics, audit)
}

#[test]
fn observability_outputs_are_byte_identical_across_worker_counts() {
    let scale = Scale::custom(370);
    // One run per worker count; the parallel runs race against each
    // other inside the pool, which is exactly the interference the
    // byte-identity contract has to survive.
    let serial = parallel_map(1, &[scale], |&s| traced_run(s));
    let parallel = parallel_map(8, &[scale, scale, scale, scale], |&s| traced_run(s));
    for (i, p) in parallel.iter().enumerate() {
        assert_eq!(serial[0].0, p.0, "trace JSON diverged (parallel run {i})");
        assert_eq!(serial[0].1, p.1, "metrics JSON diverged (parallel run {i})");
        assert_eq!(serial[0].2, p.2, "audit JSONL diverged (parallel run {i})");
    }
}
