//! Shape checks on the figure reports at tiny scale: every benchmark
//! appears, numbers parse, and the qualitative orderings the paper
//! reports survive even short runs.

use scc_workloads::{all_workloads, Scale};

fn tiny() -> Scale {
    Scale::custom(400)
}

fn row<'a>(report: &'a str, bench: &str) -> &'a str {
    report
        .lines()
        .find(|l| l.starts_with(bench))
        .unwrap_or_else(|| panic!("{bench} missing from report:\n{report}"))
}

#[test]
fn fig6_report_covers_all_benchmarks_and_levels() {
    let r = scc_bench::fig6_report(tiny());
    for w in all_workloads(tiny()) {
        assert!(r.contains(w.name.as_ref()), "{} missing", w.name);
    }
    for panel in ["(top)", "(middle)", "(bottom)"] {
        assert!(r.contains(panel), "missing panel {panel}");
    }
    for level in ["partitioned", "move-elim", "fold+prop", "branch-fold", "full-scc"] {
        assert!(r.contains(level), "missing level {level}");
    }
    // The FP benchmark line shows zero reduction at every level.
    let lbm = row(&r, "lbm");
    assert!(lbm.matches("+0.0%").count() >= 5, "lbm should be untouched: {lbm}");
}

#[test]
fn fig7_report_shows_opt_share_column() {
    let r = scc_bench::fig7_report(tiny());
    assert!(r.contains("opt-share"));
    let lbm = row(&r, "lbm");
    assert!(lbm.trim_end().ends_with("0%"), "lbm streams nothing from opt: {lbm}");
}

#[test]
fn fig8_report_has_geomeans() {
    let r = scc_bench::fig8_report(tiny());
    assert!(r.contains("GEOMEAN(spec)"));
    assert!(r.contains("GEOMEAN(parsec)"));
    assert!(r.contains("GEOMEAN(all)"));
    // Normalized values parse as positive numbers.
    let mcf = row(&r, "mcf");
    let norm: f64 = mcf.split_whitespace().nth(3).unwrap().parse().unwrap();
    assert!(norm > 0.5 && norm < 1.5, "mcf energy ratio sane: {norm}");
}

#[test]
fn area_power_is_scale_independent() {
    let a = scc_bench::area_power_report();
    let b = scc_bench::area_power_report();
    assert_eq!(a, b);
    assert!(a.contains("1.49%") || a.contains("1.5%"));
}

#[test]
fn ablation_vp_forwarding_report_orders_configs() {
    let r = scc_bench::ablations::ablate_vp_forwarding(tiny());
    assert!(r.contains("baseline+vpfwd"));
    assert!(r.contains("full-scc"));
    // Parse the geomean row: SCC must beat plain forwarding.
    let g = row(&r, "GEOMEAN");
    let cells: Vec<f64> = g
        .split_whitespace()
        .skip(1)
        .map(|c| c.parse().unwrap())
        .collect();
    assert_eq!(cells.len(), 3);
    let (vpfwd, scc) = (cells[0], cells[1]);
    assert!(scc <= vpfwd, "SCC ({scc}) should beat plain forwarding ({vpfwd})");
}
