//! The cycle loop: fetch → rename → issue/execute → commit, with SCC
//! compaction running beside fetch and full squash recovery.

use crate::config::{FrontendMode, PipelineConfig};
use crate::rob::{
    CcProvider, CcSrcState, FetchSource, PortClass, Provider, RenameMap, Rob, RobEntry, SrcState,
};
use crate::stats::PipelineStats;
use crate::trace::{Trace, TraceEvent};
use scc_core::{
    CompactionEngine, CompactionOutcome, CompactionRequest, MispredictCause, ProfitabilityUnit,
    RequestQueue, StreamChoice, UopSource,
};
use scc_isa::trace::{Event, SharedSink, SinkHandle};
use scc_isa::{
    branch_of, eval_alu, eval_complex, eval_fp, region, Addr, ArchSnapshot, CcFlags, FxHashMap,
    Memory, Op, Operand, Program, Reg, Uop, NUM_REGS,
};
#[cfg(any(debug_assertions, feature = "strict-invariants"))]
use scc_isa::NUM_INT_REGS;
use scc_memsys::MemoryHierarchy;
use scc_predictors::{BranchPredictorUnit, ValuePredictor};
use scc_uopcache::{CompactedStream, Invariant, OptPartition, UnoptPartition};
use std::collections::VecDeque;

/// One entry of the instruction decode queue.
#[derive(Clone, Debug)]
struct IdqEntry {
    uop: Uop,
    predicted_next: Option<Addr>,
    blocks_fetch: bool,
    source: FetchSource,
    pre_writes: Vec<(Reg, i64)>,
    pre_cc: Option<CcFlags>,
    is_ghost: bool,
    pred_source: Option<(u64, usize, Invariant)>,
    stream_id: Option<u64>,
    stream_end: bool,
    stream_shrinkage: u32,
    stream_tail: u32,
}

impl IdqEntry {
    fn plain(uop: Uop, source: FetchSource) -> IdqEntry {
        IdqEntry {
            uop,
            predicted_next: None,
            blocks_fetch: false,
            source,
            pre_writes: Vec::new(),
            pre_cc: None,
            is_ghost: false,
            pred_source: None,
            stream_id: None,
            stream_end: false,
            stream_shrinkage: 0,
            stream_tail: 0,
        }
    }
}

/// SCC front-end state: the compaction engine, its request queue, and the
/// profitability analysis unit.
struct SccState {
    engine: CompactionEngine,
    queue: RequestQueue,
    profit: ProfitabilityUnit,
    /// The stream produced by the in-flight compaction, committed to the
    /// optimized partition when `busy_until` passes (the unit processes
    /// one micro-op per cycle).
    pending: Option<(Addr, CompactedStream)>,
    busy_until: u64,
}

/// Cache-accurate micro-op source for the SCC unit: only regions resident
/// in the unoptimized partition are visible.
struct CacheView<'a> {
    unopt: &'a UnoptPartition,
}

impl UopSource for CacheView<'_> {
    fn macro_uops(&self, addr: Addr) -> Option<&[Uop]> {
        let uops = self.unopt.peek(region(addr))?;
        let start = uops.iter().position(|u| u.macro_addr == addr)?;
        let len = uops[start..].iter().take_while(|u| u.macro_addr == addr).count();
        Some(&uops[start..start + len])
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program's `halt` committed.
    Halted,
    /// The cycle budget ran out first.
    CyclesExhausted,
    /// The attached cancellation check tripped (see
    /// [`Pipeline::set_cancel_check`]) — a deadline expired or the host
    /// asked the run to stop.
    Cancelled,
}

/// Results of one simulation.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Event counters.
    pub stats: PipelineStats,
    /// Final architectural state (compare against the reference
    /// interpreter).
    pub snapshot: ArchSnapshot,
}

/// The out-of-order core.
pub struct Pipeline<'p> {
    program: &'p Program,
    cfg: PipelineConfig,
    cycle: u64,
    // Architectural state.
    arch_regs: [i64; NUM_REGS],
    arch_cc: CcFlags,
    mem: Memory,
    halted: bool,
    // Front end.
    fetch_pc: Addr,
    /// Micro-op slot within the macro at `fetch_pc` to resume from (fetch
    /// can split a multi-uop macro-instruction across cycles).
    fetch_slot: u8,
    fetch_stall_until: u64,
    fetch_halted: bool,
    fetch_blocked: bool,
    pending_decode: Option<(Addr, u64)>,
    active_stream: VecDeque<IdqEntry>,
    idq: VecDeque<IdqEntry>,
    bp: BranchPredictorUnit,
    vp: Box<dyn ValuePredictor>,
    hier: MemoryHierarchy,
    unopt: UnoptPartition,
    opt: Option<OptPartition>,
    scc: Option<SccState>,
    force_unopt: FxHashMap<Addr, u64>,
    /// Non-ghost micro-ops per macro address currently in flight (stream
    /// buffer, IDQ, or ROB), maintained incrementally so the profitability
    /// unit's phase lookup is O(1) instead of a scan of all three queues.
    inflight: FxHashMap<Addr, u32>,
    // Back end.
    rob: Rob,
    rmap: RenameMap,
    next_seq: u64,
    /// Scratch buffer for the completion scan, retained across cycles so
    /// the hot loop never allocates.
    scratch_resolved: Vec<(usize, i64, i64)>,
    /// Event-driven fast-forward jumps taken (diagnostics; deliberately
    /// *not* part of [`PipelineStats`] so stats stay byte-identical with
    /// fast-forward disabled).
    ff_jumps: u64,
    stats: PipelineStats,
    trace: Option<Trace>,
    /// Structured observability sink (disabled by default; see
    /// [`Pipeline::attach_sink`]).
    obs: SinkHandle,
    /// Fetch-mix interval tracker: (interval start cycle, icache, unopt,
    /// opt) counter snapshots at the start of the current interval.
    obs_fetch_mark: (u64, u64, u64, u64),
    /// Host-side cancellation check, polled every 4096 cycles by the run
    /// loops (deadlines, service shutdown). `None` costs one branch.
    cancel: Option<Box<dyn Fn() -> bool + Send>>,
    /// True once the cancellation check tripped.
    cancelled: bool,
}

impl<'p> Pipeline<'p> {
    /// Creates a pipeline over `program` with the given configuration.
    pub fn new(program: &'p Program, cfg: PipelineConfig) -> Pipeline<'p> {
        let (unopt, opt, scc) = match &cfg.frontend {
            FrontendMode::Baseline { uop_cache } => (UnoptPartition::new(*uop_cache), None, None),
            FrontendMode::Scc { unopt, opt, scc } => (
                UnoptPartition::new(*unopt),
                Some(OptPartition::new(*opt)),
                Some(SccState {
                    engine: CompactionEngine::new(*scc),
                    queue: RequestQueue::new(scc.request_queue_len),
                    profit: ProfitabilityUnit::new(*scc),
                    pending: None,
                    busy_until: 0,
                }),
            ),
        };
        let arch_regs = [0i64; NUM_REGS];
        Pipeline {
            fetch_pc: program.entry(),
            fetch_slot: 0,
            mem: Memory::from_image(program.init_data()),
            rmap: RenameMap::from_arch(&arch_regs, CcFlags::default()),
            arch_regs,
            arch_cc: CcFlags::default(),
            halted: false,
            cycle: 0,
            fetch_stall_until: 0,
            fetch_halted: false,
            fetch_blocked: false,
            pending_decode: None,
            active_stream: VecDeque::new(),
            idq: VecDeque::new(),
            bp: BranchPredictorUnit::new(cfg.branch_predictor),
            vp: cfg.value_predictor.build(),
            hier: MemoryHierarchy::new(&cfg.hierarchy),
            unopt,
            opt,
            scc,
            force_unopt: FxHashMap::default(),
            inflight: FxHashMap::default(),
            rob: Rob::new(),
            next_seq: 1,
            scratch_resolved: Vec::new(),
            ff_jumps: 0,
            stats: PipelineStats::default(),
            trace: None,
            obs: SinkHandle::disabled(),
            obs_fetch_mark: (0, 0, 0, 0),
            cancel: None,
            cancelled: false,
            program,
            cfg,
        }
    }

    /// Attaches a cancellation check. The run loops poll it every 4096
    /// cycles; when it returns `true` the run stops at the next poll
    /// point with [`RunOutcome::Cancelled`] and partial (but internally
    /// consistent) stats. This is how a serving layer enforces
    /// per-request deadlines without a watchdog thread: the check
    /// typically compares `Instant::now()` against a deadline.
    pub fn set_cancel_check(&mut self, check: Box<dyn Fn() -> bool + Send>) {
        self.cancel = Some(check);
    }

    /// Polls the cancellation check (if any) at the 4096-cycle cadence
    /// shared with the other periodic run-loop work. Returns `true` once
    /// the run should stop.
    fn cancel_tripped(&mut self) -> bool {
        if self.cancelled {
            return true;
        }
        if self.cycle & 0xfff == 0 {
            if let Some(check) = &self.cancel {
                if check() {
                    self.cancelled = true;
                    return true;
                }
            }
        }
        false
    }

    /// Attaches a structured observability sink: fetch-mix intervals,
    /// compaction passes with per-micro-op decisions, stream lifecycle,
    /// squash windows, and assumption validation outcomes all flow to it.
    /// Also enables the compaction engine's decision audit. With no sink
    /// attached every emission site is a single branch on a `None`.
    pub fn attach_sink(&mut self, sink: SharedSink) {
        let handle = SinkHandle::attached(sink);
        self.unopt.attach_sink(handle.clone());
        if let Some(opt) = &mut self.opt {
            opt.attach_sink(handle.clone());
        }
        if let Some(scc) = &mut self.scc {
            scc.engine.set_audit(true);
        }
        self.obs_fetch_mark = (
            self.cycle,
            self.stats.uops_from_icache,
            self.stats.uops_from_unopt,
            self.stats.uops_from_opt,
        );
        self.obs = handle;
    }

    /// Enables high-level tracing (commits, squashes, stream choices,
    /// compaction outcomes), keeping the most recent `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Takes the recorded trace, disabling tracing.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Creates a pipeline that starts from an architectural checkpoint
    /// (registers, flags, memory) at `pc` instead of the program entry —
    /// the SimPoint methodology's fast-forward. Microarchitectural state
    /// (caches, predictors, SCC streams) starts cold, as in
    /// checkpoint-based sampling without warmup.
    pub fn new_at(
        program: &'p Program,
        cfg: PipelineConfig,
        checkpoint: &ArchSnapshot,
        pc: Addr,
    ) -> Pipeline<'p> {
        let mut p = Pipeline::new(program, cfg);
        p.arch_regs = checkpoint.regs;
        p.arch_cc = checkpoint.cc;
        p.mem = Memory::from_image(&checkpoint.mem);
        p.rmap = RenameMap::from_arch(&p.arch_regs, p.arch_cc);
        p.fetch_pc = pc;
        p
    }

    /// Runs until `halt` commits, `max_cycles` elapse, or the attached
    /// cancellation check trips.
    pub fn run(&mut self, max_cycles: u64) -> PipelineResult {
        while !self.halted && self.cycle < max_cycles && !self.cancel_tripped() {
            self.step();
            self.fast_forward_to(max_cycles);
        }
        self.finish()
    }

    /// Runs until at least `uops` micro-ops have committed (or `halt`, or
    /// the cycle budget) — one SimPoint interval's worth of simulation.
    pub fn run_until_commits(&mut self, uops: u64, max_cycles: u64) -> PipelineResult {
        while !self.halted
            && self.cycle < max_cycles
            && self.stats.committed_uops < uops
            && !self.cancel_tripped()
        {
            self.step();
            self.fast_forward_to(max_cycles);
        }
        self.finish()
    }

    /// Runs until at least `uops` of *program distance* have committed
    /// (committed micro-ops plus SCC-eliminated ones), so intervals mean
    /// the same thing at every optimization level.
    pub fn run_until_program_uops(&mut self, uops: u64, max_cycles: u64) -> PipelineResult {
        while !self.halted
            && self.cycle < max_cycles
            && self.stats.program_uops < uops
            && !self.cancel_tripped()
        {
            self.step();
            self.fast_forward_to(max_cycles);
        }
        self.finish()
    }

    // ------------------------------------------------------------------
    // Event-driven fast-forward
    // ------------------------------------------------------------------

    /// Event-driven stall fast-forward: when the machine is provably
    /// quiescent until a known future cycle, jump `self.cycle` straight to
    /// that cycle instead of spinning no-op `step()`s through the stall.
    ///
    /// A skipped cycle would have done nothing except tick the micro-op
    /// cache decay clocks, so the jump replays exactly that — one deferred
    /// `tick(target - 1)` per partition (decay is elapsed-period based, so
    /// one late call equals the per-cycle call sequence) — and bulk-credits
    /// the span to `stats.cycles`. Everything observable — stats, trace
    /// events, the audit log — stays byte-identical to per-cycle stepping.
    ///
    /// Jumps are clamped to the next 4096-cycle boundary so every
    /// boundary cycle is still stepped (and polled by the run loop): the
    /// cancellation check, the `force_unopt` sweep, and the fetch-mix
    /// interval emission all keep their exact per-cycle cadence, and a
    /// cancellation (scc-serve deadline) is still noticed within 4096
    /// cycles of tripping no matter how far the machine could jump.
    fn fast_forward_to(&mut self, limit: u64) {
        // Boundary cycles run per-cycle (see above); jumping *from* one
        // would skip its poll/sweep work.
        if !self.cfg.fast_forward || self.halted || self.cycle & 0xfff == 0 {
            return;
        }
        let Some(next) = self.next_event_cycle() else { return };
        let boundary = (self.cycle | 0xfff) + 1;
        let target = next.min(boundary).min(limit);
        if target <= self.cycle {
            return;
        }
        // The skipped steps' only side effect, applied in one call.
        self.unopt.tick(target - 1);
        if let Some(opt) = &mut self.opt {
            opt.tick(target - 1);
        }
        self.cycle = target;
        self.stats.cycles = target;
        self.ff_jumps += 1;
        // Per-cycle stepping emits the fetch-mix interval when the cycle
        // counter lands on a boundary; a jump that lands there owes the
        // same emission.
        if target & 0xfff == 0 {
            self.emit_fetch_interval();
        }
    }

    /// The next cycle at which any pipeline stage can make progress, or
    /// `None` when some stage can act *this* cycle (conservative: any
    /// doubt reads as "progress now", which merely falls back to
    /// per-cycle stepping).
    ///
    /// Event sources, stage by stage:
    /// - **Commit**: a done ROB head retires now.
    /// - **Execute**: the earliest scheduled completion among in-flight
    ///   entries ([`Rob::quiet_until`]); a ready-but-unissued entry counts
    ///   as progress now (ports permitting — not modeled, conservative).
    /// - **Rename**: a non-empty IDQ with ROB/scheduler space dispatches
    ///   now.
    /// - **SCC**: a pending stream install or queued compaction request
    ///   fires when `busy_until` passes.
    /// - **Fetch**: an in-flight legacy decode completes at its ready
    ///   cycle (gated by any squash-recovery stall); otherwise fetch with
    ///   IDQ space acts as soon as `fetch_stall_until` passes. Every
    ///   fetch attempt mutates lookup/hotness state even when it delivers
    ///   nothing (bogus speculative targets), so an unstalled fetch is
    ///   always "progress now". A full IDQ with no decode in flight
    ///   contributes no event: it unblocks via rename ← commit ←
    ///   completion, which the ROB legs already cover.
    fn next_event_cycle(&self) -> Option<u64> {
        if self.rob.front_done() {
            return None;
        }
        let mut next = self.rob.quiet_until(self.cycle)?;
        if !self.idq.is_empty()
            && self.rob.len() < self.cfg.core.rob_entries
            && self.rob.window_occupancy() < self.cfg.core.sched_entries
        {
            return None;
        }
        if let Some(scc) = &self.scc {
            if scc.pending.is_some() || !scc.queue.is_empty() {
                if scc.busy_until <= self.cycle {
                    return None;
                }
                next = next.min(scc.busy_until);
            }
        }
        if !self.fetch_halted && !self.fetch_blocked {
            if let Some((_, ready)) = self.pending_decode {
                let gate = ready.max(self.fetch_stall_until);
                if gate <= self.cycle {
                    return None;
                }
                next = next.min(gate);
            } else if self.idq.len() < self.cfg.core.idq_entries {
                if self.fetch_stall_until <= self.cycle {
                    return None;
                }
                next = next.min(self.fetch_stall_until);
            }
        }
        Some(next)
    }

    /// Number of event-driven fast-forward jumps taken so far
    /// (diagnostics and tests; not part of [`PipelineStats`]).
    pub fn ff_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.commit();
        self.complete();
        self.issue();
        self.rename();
        self.scc_step();
        self.fetch();
        self.unopt.tick(self.cycle);
        if let Some(opt) = &mut self.opt {
            opt.tick(self.cycle);
        }
        // Expired force-unopt windows are otherwise only removed when
        // their region is re-probed, so one-shot regions would leak map
        // entries for the rest of the run.
        if self.cycle & 0xfff == 0 && !self.force_unopt.is_empty() {
            let now = self.cycle;
            self.force_unopt.retain(|_, &mut until| until > now);
        }
        self.cycle += 1;
        self.stats.cycles = self.cycle;
        if self.cycle & 0xfff == 0 {
            self.emit_fetch_interval();
        }
    }

    /// Closes the current fetch-mix interval and emits it (no-op when the
    /// sink is disabled or the interval is empty).
    fn emit_fetch_interval(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        let (start, i0, u0, o0) = self.obs_fetch_mark;
        if self.cycle == start {
            return;
        }
        let (i1, u1, o1) = (
            self.stats.uops_from_icache,
            self.stats.uops_from_unopt,
            self.stats.uops_from_opt,
        );
        let cycle = self.cycle;
        self.obs.emit(|| Event::FetchInterval {
            start_cycle: start,
            end_cycle: cycle,
            icache: i1 - i0,
            unopt: u1 - u0,
            opt: o1 - o0,
        });
        self.obs_fetch_mark = (cycle, i1, u1, o1);
    }

    fn finish(&mut self) -> PipelineResult {
        self.emit_fetch_interval();
        self.stats.hierarchy = self.hier.stats();
        self.stats.unopt = self.unopt.stats();
        if let Some(opt) = &self.opt {
            self.stats.opt = opt.stats();
        }
        if let Some(scc) = &self.scc {
            self.stats.scc_alu_ops = scc.engine.alu_ops();
            let es = scc.engine.stats();
            self.stats.streams_committed = es.committed;
            self.stats.compactions_discarded = es.discarded;
            self.stats.compactions_aborted = es.aborted_self_loop + es.aborted_smc;
            self.stats.compactions =
                es.committed + es.discarded + es.aborted_self_loop + es.aborted_smc;
        }
        PipelineResult {
            outcome: if self.halted {
                RunOutcome::Halted
            } else if self.cancelled {
                RunOutcome::Cancelled
            } else {
                RunOutcome::CyclesExhausted
            },
            stats: self.stats.clone(),
            snapshot: ArchSnapshot {
                regs: self.arch_regs,
                cc: self.arch_cc,
                mem: self.mem.dump(),
            },
        }
    }

    /// Current cycle (tests).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.core.commit_width {
            if !self.rob.front_done() {
                break;
            }
            let committed = self.rob.pop_front().expect("checked non-empty");
            let (seq, mispredicted, e) = (committed.seq, committed.mispredicted, committed.entry);
            if !e.is_ghost {
                self.inflight_dec(e.uop.macro_addr);
            }
            // Live-out inlining: architecturally older than the entry.
            for &(r, v) in &e.pre_writes {
                self.arch_regs[r.index()] = v;
                self.stats.live_out_writes += 1;
            }
            if let Some(f) = e.pre_cc {
                self.arch_cc = f;
            }
            if e.is_ghost {
                self.stats.committed_ghosts += 1;
                self.stats.program_uops += (e.stream_shrinkage + e.stream_tail) as u64;
                if e.stream_end {
                    if let Some(scc) = &mut self.scc {
                        scc.profit.on_good_stream();
                    }
                }
                continue;
            }
            if let (Some(dst), Some(v)) = (e.uop.dst, e.result) {
                self.arch_regs[dst.index()] = v;
                // The producer leaves the ROB: repoint the rename map at
                // the committed value so later consumers don't wait on a
                // sequence number that no longer exists.
                if self.rmap.get(dst) == Provider::Rob(seq) {
                    self.rmap.set_value(dst, v);
                }
            }
            if e.uop.writes_cc {
                if let Some(f) = e.out_cc {
                    self.arch_cc = f;
                    if matches!(self.rmap.cc(), CcProvider::Rob(s) if s == seq) {
                        self.rmap.set_cc_value(f);
                    }
                }
            }
            if e.uop.op == Op::Store {
                let addr = e.mem_addr.expect("committed store has address");
                let v = e.store_value.expect("committed store has value");
                self.mem.write(addr, v);
                self.hier.data_access(addr, true);
                self.stats.exec_stores += 1;
                // Runtime self-modifying-code handling: invalidate cached
                // micro-ops of a written code region.
                let r = region(addr);
                if self.unopt.contains(r) {
                    self.unopt.invalidate(r);
                    if let Some(opt) = &mut self.opt {
                        opt.invalidate(r);
                    }
                }
            }
            // Train the value predictor with committed results (the paper
            // keeps predictor state current even for optimized streams).
            if let (Some(dst), Some(v)) = (e.uop.dst, e.result) {
                if dst.is_int()
                    && !e.uop.op.is_fp()
                    && !e.uop.op.is_branch()
                    && e.uop.op != Op::MovImm
                {
                    self.vp.train(e.uop.macro_addr, v);
                    self.stats.vp_trains += 1;
                }
            }
            // Invariant confidence reward for validated prediction
            // sources.
            if let Some((sid, idx, inv)) = e.pred_source {
                // A mismatched source still commits (the squash removes
                // only younger entries); its penalty was applied at
                // resolution, so only clean sources earn a reward.
                if !mispredicted {
                    if let Some(opt) = &mut self.opt {
                        opt.reward(sid, idx);
                        self.stats.invariants_validated += 1;
                        let cycle = self.cycle;
                        self.obs.emit(|| Event::AssumptionValidated {
                            cycle,
                            stream_id: sid,
                            invariant: idx,
                            kind: match inv {
                                Invariant::Data { .. } => "data",
                                Invariant::Control { .. } => "control",
                            },
                        });
                    }
                }
            }
            if e.stream_end {
                if let Some(scc) = &mut self.scc {
                    scc.profit.on_good_stream();
                }
            }
            if let Some(tr) = &mut self.trace {
                tr.push(TraceEvent::Commit {
                    cycle: self.cycle,
                    seq,
                    pc: e.uop.macro_addr,
                    uop: e.uop.to_string(),
                    source: e.source,
                });
            }
            self.stats.committed_uops += 1;
            // A mispredicted final element's tail covers the *assumed*
            // post-entry path; the squash re-fetches the real one, which
            // counts itself.
            let tail = if mispredicted { 0 } else { e.stream_tail };
            self.stats.program_uops += 1 + (e.stream_shrinkage + tail) as u64;
            if e.uop.op == Op::Halt {
                self.halted = true;
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Execute: completion, validation, resolution
    // ------------------------------------------------------------------

    fn complete(&mut self) {
        // (sequence, redirect target, cause, stream squash bookkeeping)
        type PendingSquash = (u64, Addr, MispredictCause, Option<(u64, usize)>);
        let mut squash: Option<PendingSquash> = None;
        // The completion scan reads only the hot flag/wakeup arrays; the
        // retained scratch buffer collects hits without allocating.
        let mut resolved = std::mem::take(&mut self.scratch_resolved);
        resolved.clear();
        for i in 0..self.rob.len() {
            if !self.rob.completes_now(i, self.cycle) {
                continue;
            }
            let e = self.rob.entry(i);
            let a = e.src1.value().unwrap_or(0);
            let b = e.src2.value().unwrap_or(0);
            resolved.push((i, a, b));
        }
        for &(i, a, b) in &resolved {
            let seq = self.rob.seq(i);
            // Mark done and broadcast.
            let (result, out_cc) = {
                let e = self.rob.entry(i);
                (e.result, e.out_cc)
            };
            self.rob.set_done(i);
            self.rob.wake(seq, result, out_cc);
            // Branch resolution.
            if self.rob.entry(i).uop.op.is_branch() {
                let e = self.rob.entry(i);
                let cc = match e.cc_src {
                    Some(CcSrcState::Ready(f)) => f,
                    _ => CcFlags::default(),
                };
                let outcome = branch_of(&e.uop, a, b, cc).expect("branch resolves");
                let is_cond = e.uop.op.is_cond_branch();
                let predicted = e.predicted_next;
                let blocks = e.blocks_fetch;
                let pred_source = e.pred_source;
                let uop = e.uop.clone();
                let mispredicted = predicted.is_some_and(|p| p != outcome.next);
                if is_cond {
                    self.stats.branches_resolved += 1;
                    if mispredicted {
                        self.stats.branches_mispredicted += 1;
                    }
                }
                self.bp.update(&uop, outcome.taken, outcome.next, mispredicted);
                if blocks {
                    // Fetch stalled awaiting this target: redirect without
                    // a squash (nothing wrong-path was fetched).
                    self.fetch_pc = outcome.next;
                    self.fetch_slot = 0;
                    self.fetch_blocked = false;
                    self.fetch_halted = false;
                } else if mispredicted && squash.is_none_or(|(s, ..)| seq < s) {
                    let (cause, pen) = match pred_source {
                        Some((sid, idx, _)) => {
                            (MispredictCause::ControlInvariant, Some((sid, idx)))
                        }
                        None => (MispredictCause::PlainBranch, None),
                    };
                    self.rob.set_mispredicted(i);
                    squash = Some((seq, outcome.next, cause, pen));
                }
            } else if let Some(v) = self.rob.entry(i).vp_forwarded {
                // Classic VP-forwarding validation.
                let actual = self.rob.entry(i).result.expect("forwarded load has result");
                if actual != v {
                    self.stats.vp_forward_fails += 1;
                    self.rob.set_mispredicted(i);
                    let resume = self.rob.entry(i).uop.next_addr();
                    if squash.is_none_or(|(s, ..)| seq < s) {
                        squash = Some((seq, resume, MispredictCause::Other, None));
                    }
                }
            } else if let Some((sid, idx, Invariant::Data { value, .. })) =
                self.rob.entry(i).pred_source
            {
                // Data-invariant validation: compare the executed result
                // with the predicted invariant.
                let actual = self.rob.entry(i).result.expect("value-producing source has result");
                if actual != value {
                    self.stats.invariants_failed += 1;
                    self.rob.set_mispredicted(i);
                    let resume = self.rob.entry(i).uop.next_addr();
                    let pc = self.rob.entry(i).uop.macro_addr;
                    let cycle = self.cycle;
                    self.obs.emit(|| Event::AssumptionFailed {
                        cycle,
                        stream_id: sid,
                        invariant: idx,
                        kind: "data",
                        pc,
                    });
                    if squash.is_none_or(|(s, ..)| seq < s) {
                        squash =
                            Some((seq, resume, MispredictCause::DataInvariant, Some((sid, idx))));
                    }
                }
            }
        }
        self.scratch_resolved = resolved;
        if let Some((seq, new_pc, cause, penalty)) = squash {
            self.handle_mispredict(seq, new_pc, cause, penalty);
        }
    }

    fn handle_mispredict(
        &mut self,
        seq: u64,
        new_pc: Addr,
        cause: MispredictCause,
        stream_penalty: Option<(u64, usize)>,
    ) {
        // Penalize the stream's invariant confidence and decide recovery.
        let offender_idx = self.rob.find_seq(seq).expect("offender still in ROB");
        let offender = self.rob.entry(offender_idx);
        let from_opt = offender.source == FetchSource::Opt;
        let was_source = offender.pred_source.is_some();
        let offender_region = region(offender.uop.macro_addr);
        let offender_pc = offender.uop.macro_addr;
        let offender_stream = offender.stream_id;
        let offender_source = offender.pred_source;
        if let (Some((sid, idx)), Some(opt)) = (stream_penalty, self.opt.as_mut()) {
            opt.penalize(sid, idx);
            // Streams whose invariants have been penalized to zero are
            // stale: drop them so the partition refills with fresh
            // versions (paper §V's gradual phase-out).
            opt.phase_out(offender_region, 1);
        }
        if let Some(scc) = &mut self.scc {
            let decision = scc.profit.recovery(from_opt, was_source, cause);
            if decision.force_unoptimized {
                self.force_unopt
                    .insert(offender_region, self.cycle + self.cfg.force_unopt_window);
                scc.profit.on_squash();
            }
        }
        match cause {
            MispredictCause::DataInvariant => self.stats.scc_data_squashes += 1,
            MispredictCause::ControlInvariant => {
                self.stats.scc_control_squashes += 1;
                // Data-invariant failures are reported at validation in
                // `complete` (several may be detected per cycle, one
                // squash); control failures are 1:1 with their squash.
                if let Some((sid, idx, _)) = offender_source {
                    let cycle = self.cycle;
                    self.obs.emit(|| Event::AssumptionFailed {
                        cycle,
                        stream_id: sid,
                        invariant: idx,
                        kind: "control",
                        pc: offender_pc,
                    });
                }
            }
            MispredictCause::PlainBranch => self.stats.branch_squashes += 1,
            MispredictCause::Other => {}
        }
        let label = match cause {
            MispredictCause::DataInvariant => "scc-data",
            MispredictCause::ControlInvariant => "scc-control",
            MispredictCause::PlainBranch => "branch",
            MispredictCause::Other => "vp-forward",
        };
        self.squash_after(seq, new_pc, label, offender_stream);
    }

    /// Flushes everything younger than `seq` and redirects fetch.
    fn squash_after(
        &mut self,
        seq: u64,
        new_pc: Addr,
        cause: &'static str,
        stream_id: Option<u64>,
    ) {
        self.stats.squashes += 1;
        // Sequence numbers are monotonic, so everything younger than `seq`
        // is the suffix starting at the binary-searched cut point. One
        // pass over that suffix counts the squashed micro-ops and rolls
        // back their in-flight counters before the truncate.
        let cut = self.rob.first_younger(seq);
        let mut squashed_rob = 0u64;
        for i in cut..self.rob.len() {
            let (is_ghost, addr) = {
                let e = self.rob.entry(i);
                (e.is_ghost, e.uop.macro_addr)
            };
            if !is_ghost {
                squashed_rob += 1;
                self.inflight_dec(addr);
            }
        }
        let squashed_q = (self.idq.iter().filter(|e| !e.is_ghost).count()
            + self.active_stream.iter().filter(|e| !e.is_ghost).count())
            as u64;
        self.stats.squashed_uops += squashed_rob + squashed_q;
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::Squash {
                cycle: self.cycle,
                at_seq: seq,
                new_pc,
                cause,
                flushed: squashed_rob + squashed_q,
            });
        }
        {
            let cycle = self.cycle;
            let resume_cycle = cycle + self.cfg.core.mispredict_penalty;
            let flushed = squashed_rob + squashed_q;
            self.obs.emit(|| Event::SquashWindow {
                cycle,
                resume_cycle,
                cause,
                new_pc,
                flushed,
                stream_id,
            });
        }
        {
            let inflight = &mut self.inflight;
            let mut dec = |addr: Addr| {
                if let Some(c) = inflight.get_mut(&addr) {
                    *c -= 1;
                    if *c == 0 {
                        inflight.remove(&addr);
                    }
                }
            };
            for e in self.idq.iter().filter(|e| !e.is_ghost) {
                dec(e.uop.macro_addr);
            }
            for e in self.active_stream.iter().filter(|e| !e.is_ghost) {
                dec(e.uop.macro_addr);
            }
        }
        self.rob.truncate(cut);
        self.idq.clear();
        self.active_stream.clear();
        self.bp.on_squash();
        self.rmap = RenameMap::rebuild(&self.arch_regs, self.arch_cc, &self.rob);
        self.fetch_pc = new_pc;
        self.fetch_slot = 0;
        self.fetch_stall_until = self.cycle + self.cfg.core.mispredict_penalty;
        self.fetch_halted = false;
        self.fetch_blocked = false;
        self.pending_decode = None;
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        self.assert_squash_consistent(seq);
    }

    // ------------------------------------------------------------------
    // Issue
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        let mut alu = self.cfg.core.alu_ports;
        let mut load = self.cfg.core.load_ports;
        let mut store = self.cfg.core.store_ports;
        let mut fp = self.cfg.core.fp_ports;
        for i in 0..self.rob.len() {
            if alu == 0 && load == 0 && store == 0 && fp == 0 {
                break;
            }
            // Hot flags-only eligibility check; the cold table is touched
            // only for entries that can actually issue.
            if !self.rob.can_issue(i) {
                continue;
            }
            let class = self.rob.entry(i).port_class();
            let port = match class {
                PortClass::None => {
                    // Nops/halt complete without a port.
                    self.rob.mark_issued(i, self.cycle + 1);
                    continue;
                }
                PortClass::Alu => &mut alu,
                PortClass::Load => &mut load,
                PortClass::Store => &mut store,
                PortClass::Fp => &mut fp,
            };
            if *port == 0 {
                continue;
            }
            if class == PortClass::Load && !self.load_may_issue(i) {
                continue;
            }
            *port -= 1;
            self.execute_entry(i);
        }
    }

    /// Conservative disambiguation: a load issues only when every older
    /// store has a computed address.
    fn load_may_issue(&self, idx: usize) -> bool {
        self.rob.older_stores_resolved(idx)
    }

    fn execute_entry(&mut self, i: usize) {
        let now = self.cycle;
        let e = self.rob.entry(i);
        // Folded micro-ops exist only as live-out ghosts, done at rename;
        // one reaching an execution port would double-apply its effects.
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        assert!(!e.is_ghost, "live-out ghost (seq {}) reached execute", self.rob.seq(i));
        let a = e.src1.value().expect("ready");
        let b = e.src2.value().expect("ready");
        let cc = match e.cc_src {
            Some(CcSrcState::Ready(f)) => f,
            _ => CcFlags::default(),
        };
        let op = e.uop.op;
        let core = self.cfg.core;
        // `done_at` is the absolute completion cycle — the wakeup event
        // the fast-forward loop jumps to.
        let (result, out_cc, done_at, mem_addr, store_value) = match op {
            Op::Load => {
                let addr = (a.wrapping_add(e.uop.offset)) as u64;
                // Store-to-load forwarding from the nearest older store.
                let forward = self.rob.forward_from_store(i, addr);
                let (value, done_at) = match forward {
                    Some(v) => (v, now + self.cfg.hierarchy.l1_latency.max(1)),
                    None => {
                        let r = self.hier.data_access(addr, false);
                        (self.mem.read(addr), r.completes_at(now))
                    }
                };
                self.stats.exec_loads += 1;
                (Some(value), None, done_at, Some(addr), None)
            }
            Op::Store => {
                let addr = (a.wrapping_add(e.uop.offset)) as u64;
                (None, None, now + 1, Some(addr), Some(b))
            }
            Op::Mul => {
                self.stats.exec_muldiv += 1;
                (eval_complex(op, a, b), None, now + core.mul_latency.max(1), None, None)
            }
            Op::Div | Op::Rem => {
                self.stats.exec_muldiv += 1;
                (eval_complex(op, a, b), None, now + core.div_latency.max(1), None, None)
            }
            op if op.is_fp() => {
                self.stats.exec_fp += 1;
                let lat = if op == Op::Simd { core.simd_latency } else { core.fp_latency };
                (eval_fp(op, a, b), None, now + lat.max(1), None, None)
            }
            op if op.is_branch() => {
                self.stats.exec_alu += 1;
                let link = if op == Op::Call { Some(e.uop.next_addr() as i64) } else { None };
                (link, None, now + 1, None, None)
            }
            _ => {
                self.stats.exec_alu += 1;
                match eval_alu(op, a, b, cc, e.uop.cond) {
                    Some(r) => (r.value, r.cc, now + 1, None, None),
                    None => (None, None, now + 1, None, None), // nop/halt
                }
            }
        };
        let e = self.rob.entry_mut(i);
        e.result = result;
        e.out_cc = if e.uop.writes_cc { out_cc } else { None };
        e.mem_addr = mem_addr;
        e.store_value = store_value;
        self.rob.mark_issued(i, done_at);
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn window_occupancy(&self) -> usize {
        self.rob.window_occupancy()
    }

    fn rename(&mut self) {
        let mut window = self.window_occupancy();
        let mut slots = self.cfg.core.rename_width;
        let mut fused_free = false;
        while slots > 0 || fused_free {
            if self.idq.is_empty()
                || self.rob.len() >= self.cfg.core.rob_entries
                || window >= self.cfg.core.sched_entries
            {
                break;
            }
            let e = self.idq.pop_front().expect("checked");
            // Rename bandwidth is counted in fused micro-ops (Table I):
            // the second half of a micro-fused pair rides free.
            if !fused_free {
                slots -= 1;
            }
            fused_free = e.uop.fused_with_next;
            let seq = self.next_seq;
            self.next_seq += 1;
            // Rename-time live-out inlining (physical register inlining):
            // install constants in the map before resolving this entry's
            // own sources.
            for &(r, v) in &e.pre_writes {
                self.rmap.set_value(r, v);
            }
            if let Some(f) = e.pre_cc {
                self.rmap.set_cc_value(f);
            }
            if e.is_ghost {
                self.rob.push_back(
                    seq,
                    RobEntry {
                        uop: e.uop,
                        src1: SrcState::Ready(0),
                        src2: SrcState::Ready(0),
                        cc_src: None,
                        result: None,
                        out_cc: None,
                        mem_addr: None,
                        store_value: None,
                        predicted_next: None,
                        pre_writes: e.pre_writes,
                        pre_cc: e.pre_cc,
                        is_ghost: true,
                        pred_source: None,
                        source: e.source,
                        stream_id: e.stream_id,
                        stream_end: e.stream_end,
                        blocks_fetch: false,
                        vp_forwarded: None,
                        stream_shrinkage: e.stream_shrinkage,
                        stream_tail: e.stream_tail,
                    },
                    true,
                    true,
                    self.cycle,
                );
                continue;
            }
            // Producer lookups are binary searches on the monotonic
            // sequence array, not linear ROB scans.
            let resolve = |map: &RenameMap, rob: &Rob, op: Operand| match op {
                Operand::None => SrcState::Ready(0),
                Operand::Imm(v) => SrcState::Ready(v),
                Operand::Reg(r) => match map.get(r) {
                    Provider::Value(v) => SrcState::Ready(v),
                    Provider::Rob(s) => match rob.find_seq(s) {
                        Some(i) if rob.is_done(i) => {
                            SrcState::Ready(rob.entry(i).result.unwrap_or(0))
                        }
                        _ => SrcState::Wait(s),
                    },
                },
            };
            let src1 = resolve(&self.rmap, &self.rob, e.uop.src1);
            let src2 = resolve(&self.rmap, &self.rob, e.uop.src2);
            let cc_src = if e.uop.op.reads_cc() {
                Some(match self.rmap.cc() {
                    CcProvider::Value(f) => CcSrcState::Ready(f),
                    CcProvider::Rob(s) => match self.rob.find_seq(s) {
                        Some(i) if self.rob.is_done(i) => {
                            CcSrcState::Ready(self.rob.entry(i).out_cc.unwrap_or_default())
                        }
                        _ => CcSrcState::Wait(s),
                    },
                })
            } else {
                None
            };
            if let Some(dst) = e.uop.dst {
                self.rmap.set_rob(dst, seq);
            }
            if e.uop.writes_cc {
                self.rmap.set_cc_rob(seq);
            }
            // Classic value-prediction forwarding (baseline feature,
            // appendix: --enableValuePredForwinding at confidence 15):
            // dependents of a confidently predicted load read the
            // predicted value at rename; the load validates at execute.
            let mut vp_forwarded = None;
            if let (Some(th), Some(dst)) = (self.cfg.vp_forwarding, e.uop.dst) {
                if e.uop.op == Op::Load && dst.is_int() && e.pred_source.is_none() {
                    self.stats.vp_probes += 1;
                    if let Some(p) = self.vp.predict(e.uop.macro_addr) {
                        if p.stable && p.confidence >= th {
                            self.rmap.set_value(dst, p.value);
                            vp_forwarded = Some(p.value);
                            self.stats.vp_forwards += 1;
                        }
                    }
                }
            }
            let instant = matches!(e.uop.op, Op::Nop | Op::Halt);
            self.rob.push_back(
                seq,
                RobEntry {
                    uop: e.uop,
                    src1,
                    src2,
                    cc_src,
                    result: None,
                    out_cc: None,
                    mem_addr: None,
                    store_value: None,
                    predicted_next: e.predicted_next,
                    pre_writes: e.pre_writes,
                    pre_cc: e.pre_cc,
                    is_ghost: false,
                    pred_source: e.pred_source,
                    source: e.source,
                    stream_id: e.stream_id,
                    stream_end: e.stream_end,
                    blocks_fetch: e.blocks_fetch,
                    vp_forwarded,
                    stream_shrinkage: e.stream_shrinkage,
                    stream_tail: e.stream_tail,
                },
                instant,
                instant,
                self.cycle,
            );
            self.stats.renamed_uops += 1;
            if !instant {
                window += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // SCC compaction step
    // ------------------------------------------------------------------

    fn scc_step(&mut self) {
        let Some(scc) = &mut self.scc else { return };
        // Finish an in-flight compaction.
        if scc.busy_until <= self.cycle {
            if let Some((home, stream)) = scc.pending.take() {
                self.unopt.unlock(home);
                if let Some(opt) = &mut self.opt {
                    opt.insert(stream, self.cycle);
                }
            }
            // Dispatch the next request.
            if let Some(req) = scc.queue.pop() {
                if self.unopt.contains(req.region) {
                    self.unopt.lock(req.region);
                    let view = CacheView { unopt: &self.unopt };
                    self.stats.vp_probes += 1;
                    let outcome =
                        scc.engine.compact(req.entry, &view, self.vp.as_ref(), &self.bp);
                    scc.busy_until = self.cycle + scc.engine.last_cycles();
                    self.stats.scc_busy_cycles += scc.engine.last_cycles();
                    let (label, shrinkage) = match &outcome {
                        CompactionOutcome::Committed(s) => ("committed", s.shrinkage()),
                        CompactionOutcome::Discarded { .. } => ("discarded", 0),
                        CompactionOutcome::Aborted(_) => ("aborted", 0),
                    };
                    if let Some(tr) = &mut self.trace {
                        tr.push(TraceEvent::Compaction {
                            cycle: self.cycle,
                            region: req.region,
                            outcome: label,
                            shrinkage,
                        });
                    }
                    if self.obs.is_enabled() {
                        let stream_id = match &outcome {
                            CompactionOutcome::Committed(s) => Some(s.stream_id),
                            _ => None,
                        };
                        let (start_cycle, end_cycle) = (self.cycle, scc.busy_until);
                        let (reg, entry) = (req.region, req.entry);
                        self.obs.emit(|| Event::CompactionPass {
                            start_cycle,
                            end_cycle,
                            region: reg,
                            entry,
                            outcome: label,
                            shrinkage,
                            stream_id,
                        });
                        for decision in scc.engine.take_decisions() {
                            self.obs.emit(|| Event::Decision {
                                region: reg,
                                stream_id,
                                decision,
                            });
                        }
                    }
                    match outcome {
                        CompactionOutcome::Committed(stream) => {
                            scc.pending = Some((req.region, stream));
                        }
                        CompactionOutcome::Discarded { .. } => {
                            self.unopt.unlock(req.region);
                            // Let the region re-heat and retry later with
                            // better-trained predictors.
                            self.unopt.reset_hotness(req.region);
                        }
                        CompactionOutcome::Aborted(_) => {
                            self.unopt.unlock(req.region);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        if self.halted || self.fetch_halted || self.fetch_blocked {
            return;
        }
        if self.cycle < self.fetch_stall_until {
            return;
        }
        // A legacy decode in flight?
        if let Some((reg, ready)) = self.pending_decode {
            if self.cycle < ready {
                return;
            }
            self.pending_decode = None;
            self.finish_decode(reg);
            return;
        }
        let mut budget = self.cfg.core.fetch_width;
        let mut fused_free = false;
        while budget > 0 && self.idq.len() < self.cfg.core.idq_entries {
            if self.fetch_halted || self.fetch_blocked {
                return;
            }
            // Drain the active compacted stream first.
            if let Some(e) = self.active_stream.pop_front() {
                if !e.is_ghost {
                    // The second half of a micro-fused pair rides free.
                    if !fused_free {
                        budget -= 1;
                    }
                    fused_free = e.uop.fused_with_next;
                    self.stats.uops_from_opt += 1;
                }
                if e.uop.op == Op::Halt {
                    self.fetch_halted = true;
                }
                self.idq.push_back(e);
                continue;
            }
            let pc = self.fetch_pc;
            let reg = region(pc);
            // Try the optimized partition.
            if self.try_stream_optimized(pc) {
                continue;
            }
            // Try the unoptimized partition.
            self.stats.uopcache_lookups += 1;
            let threshold = self.unopt.config().hotness_threshold;
            let lookup = self.unopt.lookup(reg, self.cycle);
            if let Some(lk) = lookup {
                // Request compaction when the line first crosses the
                // hotness threshold, and periodically re-request while it
                // stays hot — this retries discarded passes once the
                // predictors have trained, and refreshes stale streams
                // with newly predicted invariants (the paper's
                // multi-version co-hosting).
                let retrigger = lk.hotness >= threshold && (lk.hotness - threshold).is_multiple_of(64);
                let became_hot = lk.became_hot;
                // Loop stream detector hint (paper §III lists it among
                // SCC's hint sources): code inside a detected hot loop
                // qualifies at half the hotness threshold.
                let lsd_hot = lk.hotness >= threshold / 2 && lk.hotness < threshold;
                // The lookup shares the cache line (`Arc`), so delivery
                // needs no per-fetch copy of the micro-ops.
                let uops = lk.uops;
                if became_hot
                    || retrigger
                    || (lsd_hot && self.bp.loop_detector().contains(pc))
                {
                    if let Some(scc) = &mut self.scc {
                        scc.queue.push(CompactionRequest { region: reg, entry: pc });
                    }
                }
                if !self.deliver_sequential(&uops, FetchSource::Unopt, &mut budget) {
                    return; // bogus speculative pc: wait for a squash
                }
                continue;
            }
            // Legacy decode path.
            self.start_decode(pc, reg);
            return;
        }
    }

    #[inline]
    fn inflight_inc(&mut self, addr: Addr) {
        *self.inflight.entry(addr).or_insert(0) += 1;
    }

    #[inline]
    fn inflight_dec(&mut self, addr: Addr) {
        match self.inflight.get_mut(&addr) {
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.inflight.remove(&addr);
                }
            }
            None => debug_assert!(false, "inflight underflow at {addr:#x}"),
        }
    }

    /// Debug-build cross-check: the incremental per-address counter must
    /// equal a fresh scan of the stream buffer, IDQ, and ROB.
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn assert_inflight_consistent(&self) {
        let mut scan: FxHashMap<Addr, u32> = FxHashMap::default();
        for v in self.rob.iter().filter(|v| !v.entry.is_ghost) {
            *scan.entry(v.entry.uop.macro_addr).or_insert(0) += 1;
        }
        for e in self.idq.iter().chain(self.active_stream.iter()).filter(|e| !e.is_ghost) {
            *scan.entry(e.uop.macro_addr).or_insert(0) += 1;
        }
        assert_eq!(scan, self.inflight, "incremental in-flight counter diverged from queue scan");
        self.rob.assert_ready_bits_consistent();
    }

    /// Debug-build post-squash audit: after `squash_after(seq, _)` nothing
    /// younger than `seq` may survive anywhere — not in the ROB (live-out
    /// ghosts die with younger squashes like any other entry), not in the
    /// IDQ or stream buffer, and not in the rename map. A stale rename-map
    /// pointer into squashed state would resurrect a dead value on the
    /// recovery path.
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn assert_squash_consistent(&self, seq: u64) {
        assert!(self.idq.is_empty(), "IDQ drains on squash");
        assert!(self.active_stream.is_empty(), "stream buffer drains on squash");
        if let Some(v) = self.rob.iter().find(|v| v.seq > seq) {
            panic!(
                "entry seq {} (ghost: {}) survived squash_after({seq})",
                v.seq, v.entry.is_ghost
            );
        }
        self.assert_inflight_consistent();
        // Every ROB pointer in the rebuilt rename map must name the
        // youngest surviving writer of its register, still in flight, with
        // no younger inlined live-out shadowing it.
        let fp_regs = (0..(NUM_REGS - NUM_INT_REGS) as u8).map(Reg::fp);
        for r in Reg::all_int().chain(fp_regs) {
            let Provider::Rob(s) = self.rmap.get(r) else { continue };
            let youngest = self
                .rob
                .iter()
                .filter(|v| !v.entry.is_ghost && v.entry.uop.dst == Some(r))
                .max_by_key(|v| v.seq)
                .unwrap_or_else(|| panic!("rename map for {r} points at seq {s}, not in ROB"));
            assert_eq!(youngest.seq, s, "rename map for {r} must track the youngest writer");
            assert!(!youngest.done, "done writers rebuild as values, not ROB pointers ({r})");
            assert!(
                !self
                    .rob
                    .iter()
                    .any(|v| v.seq > s && v.entry.pre_writes.iter().any(|&(pr, _)| pr == r)),
                "inlined live-out for {r} is younger than its ROB pointer (seq {s})"
            );
        }
        if let CcProvider::Rob(s) = self.rmap.cc() {
            let youngest = self
                .rob
                .iter()
                .filter(|v| !v.entry.is_ghost && v.entry.uop.writes_cc)
                .max_by_key(|v| v.seq)
                .unwrap_or_else(|| panic!("cc rename map points at seq {s}, not in ROB"));
            assert_eq!(youngest.seq, s, "cc rename map must track the youngest flag writer");
            assert!(!youngest.done, "done flag writers rebuild as values");
            assert!(
                !self.rob.iter().any(|v| v.seq > s && v.entry.pre_cc.is_some()),
                "inlined cc live-out is younger than the cc ROB pointer (seq {s})"
            );
        }
    }

    /// Debug-build stream audit at activation: the compaction engine's
    /// output must be internally consistent before fetch trusts it. Every
    /// prediction-source index lands in the invariant table, data sources
    /// sit on the exact micro-op (`pc`, `slot`) they validate, and control
    /// sources carry a `branch_next` that agrees with the invariant's
    /// predicted target — commit validates the resolved branch against
    /// `predicted_next`, so a disagreement here would squash a correct
    /// prediction or, worse, commit a wrong one.
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn assert_stream_well_formed(&self, stream: &CompactedStream) {
        assert!(
            stream.credited_elided() <= stream.shrinkage(),
            "stream {} credits {} eliminations across {} of total shrinkage",
            stream.stream_id,
            stream.credited_elided(),
            stream.shrinkage()
        );
        for su in &stream.uops {
            let Some(idx) = su.pred_source else { continue };
            let inv = stream
                .invariants
                .get(idx)
                .unwrap_or_else(|| {
                    panic!(
                        "stream {}: pred_source index {idx} outside {} invariants",
                        stream.stream_id,
                        stream.invariants.len()
                    )
                })
                .invariant;
            match inv {
                Invariant::Data { pc, slot, .. } => {
                    assert_eq!(
                        (su.uop.macro_addr, su.uop.slot),
                        (pc, slot),
                        "stream {}: data invariant anchored at {pc:#x}/{slot} rides the \
                         micro-op at {:#x}/{}",
                        stream.stream_id,
                        su.uop.macro_addr,
                        su.uop.slot
                    );
                }
                Invariant::Control { pc, target, .. } => {
                    assert!(
                        su.uop.op.is_branch(),
                        "stream {}: control invariant on non-branch {}",
                        stream.stream_id,
                        su.uop.op
                    );
                    assert_eq!(
                        su.uop.macro_addr, pc,
                        "stream {}: control invariant anchored at {pc:#x} rides the branch \
                         at {:#x}",
                        stream.stream_id, su.uop.macro_addr
                    );
                    assert_eq!(
                        su.branch_next,
                        Some(target),
                        "stream {}: control source at {pc:#x} must validate against the \
                         invariant target",
                        stream.stream_id
                    );
                }
            }
        }
    }

    /// Checks the optimized partition at `pc`; on a profitable hit, loads
    /// the chosen stream into the active-stream buffer. Returns true if a
    /// stream was activated.
    fn try_stream_optimized(&mut self, pc: Addr) -> bool {
        let reg = region(pc);
        if self.opt.is_none() {
            return false;
        }
        // Regions recently squashed by SCC are forced to the unoptimized
        // partition for a window.
        match self.force_unopt.get(&reg) {
            Some(&until) if until > self.cycle => return false,
            Some(_) => {
                self.force_unopt.remove(&reg);
            }
            None => {}
        }
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        if self.cycle & 0x3ff == 0 {
            self.assert_inflight_consistent();
        }
        let opt = self.opt.as_mut().expect("checked");
        let scc = self.scc.as_mut().expect("opt implies scc");
        self.stats.uopcache_lookups += 1;
        // Record the lookup (stats + hotness) without materializing the
        // candidate list; the selection below walks the set in place.
        if opt.touch(pc, self.cycle) == 0 {
            return false;
        }
        self.stats.vp_probes += 1;
        // In-flight instances of each invariant's PC: fetched (IDQ/stream
        // buffer) or renamed (ROB) but not yet committed+trained. Phase-
        // aware predictors use this to line the re-check up with the
        // dynamic instance the stream will actually validate against.
        let inflight_counts = &self.inflight;
        let inflight =
            |addr: Addr| -> u64 { inflight_counts.get(&addr).copied().unwrap_or(0) as u64 };
        let choice = scc.profit.choose_candidates(opt.candidates(pc), self.vp.as_ref(), inflight);
        let StreamChoice::Optimized { stream_id } = choice else {
            return false;
        };
        let stream = opt
            .candidates(pc)
            .find(|(s, _)| s.stream_id == stream_id)
            .map(|(s, _)| s.clone())
            .expect("chosen stream exists");
        self.activate_stream(stream);
        true
    }

    fn activate_stream(&mut self, stream: CompactedStream) {
        #[cfg(any(debug_assertions, feature = "strict-invariants"))]
        self.assert_stream_well_formed(&stream);
        if let Some(tr) = &mut self.trace {
            tr.push(TraceEvent::StreamChosen {
                cycle: self.cycle,
                stream_id: stream.stream_id,
                pc: stream.entry,
                len: stream.uops.len(),
            });
        }
        {
            let cycle = self.cycle;
            let (stream_id, pc, len) = (stream.stream_id, stream.entry, stream.uops.len());
            self.obs.emit(|| Event::StreamActivated { cycle, stream_id, pc, len });
        }
        let n = stream.uops.len();
        // Program-distance accounting: each surviving element carries the
        // eliminations between its predecessor and itself, and the final
        // element (ghost or not) carries the tail past the last survivor.
        // A mid-flight squash therefore counts exactly the eliminated
        // micro-ops its committed prefix covers; the re-fetched
        // unoptimized path re-counts the rest one by one.
        let tail_elided = stream.shrinkage().saturating_sub(stream.credited_elided());
        for (i, su) in stream.uops.iter().enumerate() {
            let next_real = stream
                .uops
                .get(i + 1)
                .map(|nu| nu.uop.macro_addr)
                .unwrap_or(stream.exit);
            let mut e = IdqEntry::plain(su.uop.clone(), FetchSource::Opt);
            self.inflight_inc(su.uop.macro_addr);
            e.pre_writes = su.live_outs.clone();
            e.pre_cc = su.live_out_cc;
            e.stream_id = Some(stream.stream_id);
            e.pred_source = su
                .pred_source
                .map(|idx| (stream.stream_id, idx, stream.invariants[idx].invariant));
            if su.uop.op.is_branch() {
                // Validate against the architectural path the compaction
                // followed; the next surviving micro-op may be far past
                // folded code.
                e.predicted_next = Some(su.branch_next.unwrap_or(next_real));
            }
            e.stream_shrinkage = su.elided_before;
            let has_final_ghost =
                !stream.final_live_outs.is_empty() || stream.final_live_out_cc.is_some();
            if i + 1 == n && !has_final_ghost {
                e.stream_end = true;
                e.stream_tail = tail_elided;
            }
            self.active_stream.push_back(e);
        }
        if !stream.final_live_outs.is_empty() || stream.final_live_out_cc.is_some() {
            let mut anchor = Uop::new(Op::Nop);
            anchor.macro_addr = stream.exit;
            anchor.macro_len = 0;
            let mut ghost = IdqEntry::plain(anchor, FetchSource::Opt);
            ghost.is_ghost = true;
            ghost.pre_writes = stream.final_live_outs.clone();
            ghost.pre_cc = stream.final_live_out_cc;
            ghost.stream_id = Some(stream.stream_id);
            ghost.stream_end = true;
            ghost.stream_tail = tail_elided;
            self.active_stream.push_back(ghost);
        }
        self.fetch_pc = stream.exit;
        self.fetch_slot = 0;
    }

    /// Streams decoded micro-ops sequentially from `fetch_pc` within a
    /// cached region's micro-ops, predicting branches. Returns false when
    /// `fetch_pc` does not name a macro boundary in the slice (bogus
    /// speculative target).
    fn deliver_sequential(
        &mut self,
        uops: &[Uop],
        source: FetchSource,
        budget: &mut usize,
    ) -> bool {
        let start = match uops
            .iter()
            .position(|u| u.macro_addr == self.fetch_pc && u.slot == self.fetch_slot)
        {
            Some(i) => i,
            // A stale slot (after an external redirect) falls back to the
            // macro boundary.
            None => match uops.iter().position(|u| u.macro_addr == self.fetch_pc) {
                Some(i) => i,
                None => return false,
            },
        };
        let mut fused_free = false;
        for (j, u) in uops.iter().enumerate().skip(start) {
            if (*budget == 0 && !fused_free) || self.idq.len() >= self.cfg.core.idq_entries {
                self.fetch_pc = u.macro_addr;
                self.fetch_slot = u.slot;
                return true;
            }
            let last_in_macro =
                uops.get(j + 1).is_none_or(|n| n.macro_addr != u.macro_addr);
            let mut e = IdqEntry::plain(u.clone(), source);
            self.inflight_inc(u.macro_addr);
            match source {
                FetchSource::Icache => self.stats.uops_from_icache += 1,
                FetchSource::Unopt => self.stats.uops_from_unopt += 1,
                FetchSource::Opt => {}
            }
            if fused_free {
                fused_free = false;
            } else {
                *budget -= 1;
            }
            fused_free = fused_free || u.fused_with_next;
            if u.op == Op::Halt {
                self.fetch_halted = true;
                self.idq.push_back(e);
                return true;
            }
            if u.op.is_branch() {
                let pred = self.bp.predict(u);
                self.stats.bp_lookups += 1;
                match pred.target {
                    Some(t) => {
                        e.predicted_next = Some(t);
                        self.idq.push_back(e);
                        self.fetch_pc = t;
                        self.fetch_slot = 0;
                        if pred.taken || t != u.next_addr() {
                            // Taken prediction ends the fetch group.
                            return true;
                        }
                        continue;
                    }
                    None => {
                        // No target source: stall fetch until resolution.
                        e.blocks_fetch = true;
                        self.fetch_blocked = true;
                        self.idq.push_back(e);
                        return true;
                    }
                }
            }
            self.idq.push_back(e);
            if last_in_macro {
                self.fetch_pc = u.next_addr();
                self.fetch_slot = 0;
            } else {
                self.fetch_pc = u.macro_addr;
                self.fetch_slot = u.slot + 1;
            }
        }
        true
    }

    fn start_decode(&mut self, pc: Addr, reg: Addr) {
        // Does the program even have code here? If not, fetch idles on a
        // bogus speculative target until a squash redirects it.
        let has_code = self.program.insts_in_region(reg).next().is_some();
        if !has_code {
            return;
        }
        let access = self.hier.instr_access(pc);
        let latency = access.latency + self.cfg.core.decode_latency;
        self.pending_decode = Some((reg, self.cycle + latency));
    }

    fn finish_decode(&mut self, reg: Addr) {
        let macros: Vec<&scc_isa::MacroInst> = self.program.insts_in_region(reg).collect();
        self.stats.decoded_macros += macros.len() as u64;
        let mut uops: Vec<Uop> = macros.iter().flat_map(|m| m.uops.iter().cloned()).collect();
        if self.cfg.core.micro_fusion {
            scc_isa::fusion::fuse_pairs(&mut uops);
        }
        // Fill the unoptimized partition (regions wider than 3 ways stay
        // uncacheable and will take the decode path every time).
        self.unopt.fill(reg, uops.clone(), self.cycle);
        let mut budget = self.cfg.core.fetch_width;
        let _ = self.deliver_sequential(&uops, FetchSource::Icache, &mut budget);
    }
}
