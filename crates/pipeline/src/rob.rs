//! Reorder buffer entries and the rename map.

use scc_isa::{Addr, CcFlags, Op, Reg, Uop, NUM_REGS};
use scc_uopcache::Invariant;

/// Which front-end source supplied a micro-op (Figure 7's three bars).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FetchSource {
    /// Legacy decode pipeline fed by the instruction cache.
    Icache,
    /// Unoptimized micro-op cache partition (or the baseline's single
    /// cache).
    Unopt,
    /// Optimized (compacted-stream) partition.
    Opt,
}

/// A renamed source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcState {
    /// Value available.
    Ready(i64),
    /// Waiting on the producer with this sequence number.
    Wait(u64),
}

impl SrcState {
    /// The value, if ready.
    pub fn value(self) -> Option<i64> {
        match self {
            SrcState::Ready(v) => Some(v),
            SrcState::Wait(_) => None,
        }
    }
}

/// A renamed condition-code source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcSrcState {
    /// Flags available.
    Ready(CcFlags),
    /// Waiting on the flag-writing producer.
    Wait(u64),
}

/// One in-flight micro-op (or live-out ghost) in the reorder buffer.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Age-ordered sequence number.
    pub seq: u64,
    /// The micro-op (ghosts carry a `Nop`).
    pub uop: Uop,
    /// Renamed sources.
    pub src1: SrcState,
    /// Renamed sources.
    pub src2: SrcState,
    /// Renamed condition-code source (only for CC readers).
    pub cc_src: Option<CcSrcState>,
    /// Destination value once executed.
    pub result: Option<i64>,
    /// Flags produced once executed (CC writers).
    pub out_cc: Option<CcFlags>,
    /// Memory address once computed (loads/stores).
    pub mem_addr: Option<u64>,
    /// Store data value once ready.
    pub store_value: Option<i64>,
    /// True once issued to an execution port.
    pub executing: bool,
    /// Cycle at which execution completes.
    pub complete_cycle: u64,
    /// True once executed (result visible).
    pub done: bool,
    /// Where fetch continued after this micro-op (branches only).
    pub predicted_next: Option<Addr>,
    /// SCC live-outs installed at rename *with* this entry, architecturally
    /// older than it (they survive this entry's own misprediction).
    pub pre_writes: Vec<(Reg, i64)>,
    /// CC live-out installed with this entry.
    pub pre_cc: Option<CcFlags>,
    /// Pure live-out ghost (stream-end finals): completes at rename,
    /// consumes no execution resources, not counted as a committed
    /// micro-op.
    pub is_ghost: bool,
    /// Prediction-source metadata: (stream id, invariant index, invariant).
    pub pred_source: Option<(u64, usize, Invariant)>,
    /// Front-end source.
    pub source: FetchSource,
    /// Compacted stream this came from (diagnostics).
    #[allow(dead_code)]
    pub stream_id: Option<u64>,
    /// Last element of its compacted stream (profitability feedback).
    pub stream_end: bool,
    /// Fetch stalled on this branch (no target prediction available);
    /// resolution redirects fetch without a squash.
    pub blocks_fetch: bool,
    /// This entry's own speculation (branch direction or data invariant)
    /// failed at resolution.
    pub mispredicted: bool,
    /// Classic value-prediction forwarding: the value handed to
    /// dependents at rename, validated against the executed result.
    pub vp_forwarded: Option<i64>,
    /// Micro-ops SCC eliminated between this entry's stream predecessor
    /// and this entry, committed into `program_uops` so program distance
    /// stays exact even when a squash kills the stream's tail.
    pub stream_shrinkage: u32,
    /// On the stream's final element only: micro-ops eliminated *after*
    /// the last survivor. Counted at commit unless this entry itself
    /// mispredicted — then the post-entry path was wrong and the
    /// re-fetched unoptimized path re-counts the real continuation.
    pub stream_tail: u32,
}

impl RobEntry {
    /// True when every input (sources, CC, store data) is ready.
    pub fn inputs_ready(&self) -> bool {
        self.src1.value().is_some()
            && self.src2.value().is_some()
            && !matches!(self.cc_src, Some(CcSrcState::Wait(_)))
    }

    /// Execution-port class of this entry.
    pub fn port_class(&self) -> PortClass {
        if self.is_ghost {
            return PortClass::None;
        }
        match self.uop.op {
            Op::Nop | Op::Halt => PortClass::None,
            Op::Load => PortClass::Load,
            Op::Store => PortClass::Store,
            op if op.is_fp() => PortClass::Fp,
            _ => PortClass::Alu, // branches share ALU ports
        }
    }
}

/// Execution-port classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortClass {
    /// No port needed (nops, ghosts, halt).
    None,
    /// Integer ALU / branch.
    Alu,
    /// Load pipe.
    Load,
    /// Store pipe.
    Store,
    /// FP/SIMD pipe.
    Fp,
}

/// Who currently provides an architectural register (or the flags).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provider {
    /// A committed (or rename-time-inlined) value.
    Value(i64),
    /// The in-flight producer with this sequence number.
    Rob(u64),
}

/// The speculative rename map: architectural register → provider.
#[derive(Clone, Debug)]
pub struct RenameMap {
    regs: [Provider; NUM_REGS],
    cc: CcProvider,
}

/// Provider for the condition codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcProvider {
    /// Known flags.
    Value(CcFlags),
    /// In-flight flag writer.
    Rob(u64),
}

impl RenameMap {
    /// A map where every register reads the given architectural state.
    pub fn from_arch(regs: &[i64; NUM_REGS], cc: CcFlags) -> RenameMap {
        let mut map = RenameMap { regs: [Provider::Value(0); NUM_REGS], cc: CcProvider::Value(cc) };
        for (i, &v) in regs.iter().enumerate() {
            map.regs[i] = Provider::Value(v);
        }
        map
    }

    /// Current provider of `r`.
    pub fn get(&self, r: Reg) -> Provider {
        self.regs[r.index()]
    }

    /// Points `r` at an in-flight producer.
    pub fn set_rob(&mut self, r: Reg, seq: u64) {
        self.regs[r.index()] = Provider::Rob(seq);
    }

    /// Installs a known value for `r` (commit bypass or live-out
    /// inlining).
    pub fn set_value(&mut self, r: Reg, v: i64) {
        self.regs[r.index()] = Provider::Value(v);
    }

    /// Current provider of the flags.
    pub fn cc(&self) -> CcProvider {
        self.cc
    }

    /// Points the flags at an in-flight producer.
    pub fn set_cc_rob(&mut self, seq: u64) {
        self.cc = CcProvider::Rob(seq);
    }

    /// Installs known flags.
    pub fn set_cc_value(&mut self, flags: CcFlags) {
        self.cc = CcProvider::Value(flags);
    }

    /// Rebuilds the map after a squash: start from the architectural
    /// state, then replay every surviving in-flight entry in age order.
    pub fn rebuild<'a>(
        arch_regs: &[i64; NUM_REGS],
        arch_cc: CcFlags,
        survivors: impl Iterator<Item = &'a RobEntry>,
    ) -> RenameMap {
        let mut map = RenameMap::from_arch(arch_regs, arch_cc);
        for e in survivors {
            for &(r, v) in &e.pre_writes {
                map.set_value(r, v);
            }
            if let Some(f) = e.pre_cc {
                map.set_cc_value(f);
            }
            if !e.is_ghost {
                if let Some(dst) = e.uop.dst {
                    match e.result {
                        Some(v) if e.done => map.set_value(dst, v),
                        _ => map.set_rob(dst, e.seq),
                    }
                }
                if e.uop.writes_cc {
                    match e.out_cc {
                        Some(f) if e.done => map.set_cc_value(f),
                        _ => map.set_cc_rob(e.seq),
                    }
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, op: Op, dst: Option<Reg>) -> RobEntry {
        let mut uop = Uop::new(op);
        uop.dst = dst;
        RobEntry {
            seq,
            uop,
            src1: SrcState::Ready(0),
            src2: SrcState::Ready(0),
            cc_src: None,
            result: None,
            out_cc: None,
            mem_addr: None,
            store_value: None,
            executing: false,
            complete_cycle: 0,
            done: false,
            predicted_next: None,
            pre_writes: vec![],
            pre_cc: None,
            is_ghost: false,
            pred_source: None,
            source: FetchSource::Unopt,
            stream_id: None,
            stream_end: false,
            blocks_fetch: false,
            mispredicted: false,
            vp_forwarded: None,
            stream_shrinkage: 0,
            stream_tail: 0,
        }
    }

    #[test]
    fn src_state_values() {
        assert_eq!(SrcState::Ready(5).value(), Some(5));
        assert_eq!(SrcState::Wait(3).value(), None);
    }

    #[test]
    fn port_classes() {
        assert_eq!(entry(0, Op::Add, None).port_class(), PortClass::Alu);
        assert_eq!(entry(0, Op::Load, None).port_class(), PortClass::Load);
        assert_eq!(entry(0, Op::Store, None).port_class(), PortClass::Store);
        assert_eq!(entry(0, Op::FpMul, None).port_class(), PortClass::Fp);
        assert_eq!(entry(0, Op::CmpBr, None).port_class(), PortClass::Alu);
        assert_eq!(entry(0, Op::Nop, None).port_class(), PortClass::None);
        let mut g = entry(0, Op::Add, None);
        g.is_ghost = true;
        assert_eq!(g.port_class(), PortClass::None);
    }

    #[test]
    fn rebuild_replays_in_flight_producers() {
        let arch = [7i64; NUM_REGS];
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        let mut done = entry(10, Op::Add, Some(r1));
        done.done = true;
        done.result = Some(42);
        let pending = entry(11, Op::Mul, Some(r2));
        let map = RenameMap::rebuild(&arch, CcFlags::default(), [&done, &pending].into_iter());
        assert_eq!(map.get(r1), Provider::Value(42));
        assert_eq!(map.get(r2), Provider::Rob(11));
        assert_eq!(map.get(Reg::int(3)), Provider::Value(7));
    }

    #[test]
    fn rebuild_applies_ghost_and_pre_writes() {
        let arch = [0i64; NUM_REGS];
        let r5 = Reg::int(5);
        let mut e = entry(3, Op::Load, Some(Reg::int(6)));
        e.pre_writes = vec![(r5, 99)];
        e.pre_cc = Some(CcFlags::from_cmp(1, 1));
        let map = RenameMap::rebuild(&arch, CcFlags::default(), [&e].into_iter());
        assert_eq!(map.get(r5), Provider::Value(99));
        assert_eq!(map.get(Reg::int(6)), Provider::Rob(3));
        assert!(matches!(map.cc(), CcProvider::Value(f) if f.zf));
    }

    #[test]
    fn inputs_ready_checks_all_slots() {
        let mut e = entry(0, Op::Add, None);
        assert!(e.inputs_ready());
        e.src2 = SrcState::Wait(9);
        assert!(!e.inputs_ready());
        e.src2 = SrcState::Ready(1);
        e.cc_src = Some(CcSrcState::Wait(4));
        assert!(!e.inputs_ready());
        e.cc_src = Some(CcSrcState::Ready(CcFlags::default()));
        assert!(e.inputs_ready());
    }
}
