//! Reorder buffer (struct-of-arrays), its entries, and the rename map.
//!
//! The ROB is the pipeline's hottest data structure: `complete`, `issue`,
//! the wakeup broadcast, and the window-occupancy check all scan it every
//! cycle. [`Rob`] therefore keeps the fields those scans read — sequence
//! number, status bits (done/executing/ready/mispredicted), and the
//! scheduled wakeup cycle — in parallel arrays that fit in a few cache
//! lines even at 352 entries, while the wide per-entry payload
//! ([`RobEntry`]) sits in a side table touched only once a scan decides
//! to act on an entry.

use scc_isa::{Addr, CcFlags, Op, Reg, Uop, NUM_REGS};
use scc_uopcache::Invariant;
use std::collections::VecDeque;

/// Which front-end source supplied a micro-op (Figure 7's three bars).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FetchSource {
    /// Legacy decode pipeline fed by the instruction cache.
    Icache,
    /// Unoptimized micro-op cache partition (or the baseline's single
    /// cache).
    Unopt,
    /// Optimized (compacted-stream) partition.
    Opt,
}

/// A renamed source operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SrcState {
    /// Value available.
    Ready(i64),
    /// Waiting on the producer with this sequence number.
    Wait(u64),
}

impl SrcState {
    /// The value, if ready.
    pub fn value(self) -> Option<i64> {
        match self {
            SrcState::Ready(v) => Some(v),
            SrcState::Wait(_) => None,
        }
    }
}

/// A renamed condition-code source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcSrcState {
    /// Flags available.
    Ready(CcFlags),
    /// Waiting on the flag-writing producer.
    Wait(u64),
}

/// One in-flight micro-op (or live-out ghost) in the reorder buffer.
///
/// This is the *cold* side table: age order, status bits, and wakeup
/// cycles live in [`Rob`]'s parallel arrays.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// The micro-op (ghosts carry a `Nop`).
    pub uop: Uop,
    /// Renamed sources.
    pub src1: SrcState,
    /// Renamed sources.
    pub src2: SrcState,
    /// Renamed condition-code source (only for CC readers).
    pub cc_src: Option<CcSrcState>,
    /// Destination value once executed.
    pub result: Option<i64>,
    /// Flags produced once executed (CC writers).
    pub out_cc: Option<CcFlags>,
    /// Memory address once computed (loads/stores).
    pub mem_addr: Option<u64>,
    /// Store data value once ready.
    pub store_value: Option<i64>,
    /// Where fetch continued after this micro-op (branches only).
    pub predicted_next: Option<Addr>,
    /// SCC live-outs installed at rename *with* this entry, architecturally
    /// older than it (they survive this entry's own misprediction).
    pub pre_writes: Vec<(Reg, i64)>,
    /// CC live-out installed with this entry.
    pub pre_cc: Option<CcFlags>,
    /// Pure live-out ghost (stream-end finals): completes at rename,
    /// consumes no execution resources, not counted as a committed
    /// micro-op.
    pub is_ghost: bool,
    /// Prediction-source metadata: (stream id, invariant index, invariant).
    pub pred_source: Option<(u64, usize, Invariant)>,
    /// Front-end source.
    pub source: FetchSource,
    /// Compacted stream this came from (diagnostics).
    #[allow(dead_code)]
    pub stream_id: Option<u64>,
    /// Last element of its compacted stream (profitability feedback).
    pub stream_end: bool,
    /// Fetch stalled on this branch (no target prediction available);
    /// resolution redirects fetch without a squash.
    pub blocks_fetch: bool,
    /// Classic value-prediction forwarding: the value handed to
    /// dependents at rename, validated against the executed result.
    pub vp_forwarded: Option<i64>,
    /// Micro-ops SCC eliminated between this entry's stream predecessor
    /// and this entry, committed into `program_uops` so program distance
    /// stays exact even when a squash kills the stream's tail.
    pub stream_shrinkage: u32,
    /// On the stream's final element only: micro-ops eliminated *after*
    /// the last survivor. Counted at commit unless this entry itself
    /// mispredicted — then the post-entry path was wrong and the
    /// re-fetched unoptimized path re-counts the real continuation.
    pub stream_tail: u32,
}

impl RobEntry {
    /// True when every input (sources, CC, store data) is ready.
    pub fn inputs_ready(&self) -> bool {
        self.src1.value().is_some()
            && self.src2.value().is_some()
            && !matches!(self.cc_src, Some(CcSrcState::Wait(_)))
    }

    /// Execution-port class of this entry.
    pub fn port_class(&self) -> PortClass {
        if self.is_ghost {
            return PortClass::None;
        }
        match self.uop.op {
            Op::Nop | Op::Halt => PortClass::None,
            Op::Load => PortClass::Load,
            Op::Store => PortClass::Store,
            op if op.is_fp() => PortClass::Fp,
            _ => PortClass::Alu, // branches share ALU ports
        }
    }
}

/// Execution-port classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortClass {
    /// No port needed (nops, ghosts, halt).
    None,
    /// Integer ALU / branch.
    Alu,
    /// Load pipe.
    Load,
    /// Store pipe.
    Store,
    /// FP/SIMD pipe.
    Fp,
}

/// Status bits of the hot flag array.
mod flag {
    /// Executed; result visible.
    pub const DONE: u8 = 1 << 0;
    /// Issued to an execution port.
    pub const EXECUTING: u8 = 1 << 1;
    /// Every input ready (mirrors [`super::RobEntry::inputs_ready`];
    /// maintained at push and by the wakeup broadcast so the issue scan
    /// never touches the cold table for stalled entries).
    pub const READY: u8 = 1 << 2;
    /// This entry's own speculation failed at resolution.
    pub const MISPREDICTED: u8 = 1 << 3;
}

/// A committed (popped) ROB entry with its hot metadata.
pub struct CommittedEntry {
    /// Age-ordered sequence number.
    pub seq: u64,
    /// The entry's own speculation failed at resolution.
    pub mispredicted: bool,
    /// The cold payload.
    pub entry: RobEntry,
}

/// One row of [`Rob::iter`]: hot metadata plus the cold payload.
pub struct RobView<'a> {
    /// Age-ordered sequence number.
    pub seq: u64,
    /// True once executed.
    pub done: bool,
    /// The cold payload.
    pub entry: &'a RobEntry,
}

/// The reorder buffer, split struct-of-arrays style: `seqs`, `flags`, and
/// `complete` are the hot parallel arrays the per-cycle scans walk;
/// `cold` holds the wide [`RobEntry`] payloads in the same age order.
///
/// Sequence numbers are strictly increasing front to back (rename pushes
/// monotonically and a squash removes a suffix), so seq lookups are
/// binary searches rather than linear scans.
#[derive(Default)]
pub struct Rob {
    seqs: VecDeque<u64>,
    flags: VecDeque<u8>,
    complete: VecDeque<u64>,
    cold: VecDeque<RobEntry>,
}

impl Rob {
    /// An empty reorder buffer.
    pub fn new() -> Rob {
        Rob::default()
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when no entries are in flight (pairs with `len` for clippy's
    /// len-without-is-empty convention; the pipeline itself checks
    /// `front_done`).
    #[allow(dead_code)]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Appends `entry` with the given hot state. `seq` must exceed every
    /// sequence number already in the buffer.
    pub fn push_back(
        &mut self,
        seq: u64,
        entry: RobEntry,
        done: bool,
        executing: bool,
        complete_cycle: u64,
    ) {
        debug_assert!(
            self.seqs.back().is_none_or(|&s| s < seq),
            "ROB sequence numbers must be strictly increasing"
        );
        let mut f = 0u8;
        if done {
            f |= flag::DONE;
        }
        if executing {
            f |= flag::EXECUTING;
        }
        if entry.inputs_ready() {
            f |= flag::READY;
        }
        self.seqs.push_back(seq);
        self.flags.push_back(f);
        self.complete.push_back(complete_cycle);
        self.cold.push_back(entry);
    }

    /// True when the oldest entry exists and is done (commit can retire
    /// it this cycle).
    #[inline]
    pub fn front_done(&self) -> bool {
        self.flags.front().is_some_and(|&f| f & flag::DONE != 0)
    }

    /// Pops the oldest entry.
    pub fn pop_front(&mut self) -> Option<CommittedEntry> {
        let seq = self.seqs.pop_front()?;
        let f = self.flags.pop_front().expect("arrays in lockstep");
        self.complete.pop_front().expect("arrays in lockstep");
        let entry = self.cold.pop_front().expect("arrays in lockstep");
        Some(CommittedEntry { seq, mispredicted: f & flag::MISPREDICTED != 0, entry })
    }

    /// Sequence number of entry `i`.
    #[inline]
    pub fn seq(&self, i: usize) -> u64 {
        self.seqs[i]
    }

    /// True once entry `i` has executed.
    #[inline]
    pub fn is_done(&self, i: usize) -> bool {
        self.flags[i] & flag::DONE != 0
    }

    /// Marks entry `i` done.
    #[inline]
    pub fn set_done(&mut self, i: usize) {
        self.flags[i] |= flag::DONE;
    }

    /// Marks entry `i` as having failed its own speculation.
    #[inline]
    pub fn set_mispredicted(&mut self, i: usize) {
        self.flags[i] |= flag::MISPREDICTED;
    }

    /// Issues entry `i`: marks it executing with the given completion
    /// cycle (the wakeup array the event-driven loop scans).
    #[inline]
    pub fn mark_issued(&mut self, i: usize, complete_cycle: u64) {
        self.flags[i] |= flag::EXECUTING;
        self.complete[i] = complete_cycle;
    }

    /// True when entry `i` is eligible for the issue scan: not done, not
    /// executing, all inputs ready.
    #[inline]
    pub fn can_issue(&self, i: usize) -> bool {
        self.flags[i] & (flag::DONE | flag::EXECUTING | flag::READY) == flag::READY
    }

    /// True when entry `i` finishes execution at or before `now`.
    #[inline]
    pub fn completes_now(&self, i: usize, now: u64) -> bool {
        self.flags[i] & (flag::DONE | flag::EXECUTING) == flag::EXECUTING
            && self.complete[i] <= now
    }

    /// The cold payload of entry `i`.
    #[inline]
    pub fn entry(&self, i: usize) -> &RobEntry {
        &self.cold[i]
    }

    /// Mutable cold payload of entry `i`.
    #[inline]
    pub fn entry_mut(&mut self, i: usize) -> &mut RobEntry {
        &mut self.cold[i]
    }

    /// Index of the entry with sequence number `seq`.
    #[inline]
    pub fn find_seq(&self, seq: u64) -> Option<usize> {
        self.seqs.binary_search(&seq).ok()
    }

    /// Index of the first entry younger than `seq` (== `len()` when none
    /// are) — the squash cut point.
    #[inline]
    pub fn first_younger(&self, seq: u64) -> usize {
        self.seqs.partition_point(|&s| s <= seq)
    }

    /// Drops every entry at index `len` and beyond (squash recovery; the
    /// removed entries form the age-ordered suffix).
    pub fn truncate(&mut self, len: usize) {
        self.seqs.truncate(len);
        self.flags.truncate(len);
        self.complete.truncate(len);
        self.cold.truncate(len);
    }

    /// Wakeup broadcast: resolves every `Wait(seq)` source to the
    /// producer's result, updating the hot ready bits. Only entries that
    /// are neither done, executing, nor already ready can hold a wait, so
    /// the scan skips the rest without touching the cold table.
    pub fn wake(&mut self, seq: u64, result: Option<i64>, out_cc: Option<CcFlags>) {
        for i in 0..self.flags.len() {
            if self.flags[i] & (flag::DONE | flag::EXECUTING | flag::READY) != 0 {
                continue;
            }
            let e = &mut self.cold[i];
            if let SrcState::Wait(s) = e.src1 {
                if s == seq {
                    e.src1 = SrcState::Ready(result.unwrap_or(0));
                }
            }
            if let SrcState::Wait(s) = e.src2 {
                if s == seq {
                    e.src2 = SrcState::Ready(result.unwrap_or(0));
                }
            }
            if let Some(CcSrcState::Wait(s)) = e.cc_src {
                if s == seq {
                    e.cc_src = Some(CcSrcState::Ready(out_cc.unwrap_or_default()));
                }
            }
            if e.inputs_ready() {
                self.flags[i] |= flag::READY;
            }
        }
    }

    /// Number of not-yet-done entries (scheduler window occupancy) — a
    /// flags-only scan.
    pub fn window_occupancy(&self) -> usize {
        self.flags.iter().filter(|&&f| f & flag::DONE == 0).count()
    }

    /// Conservative disambiguation input: true when every store older
    /// than entry `i` has a computed address.
    pub fn older_stores_resolved(&self, i: usize) -> bool {
        self.cold
            .iter()
            .take(i)
            .all(|e| e.uop.op != Op::Store || e.mem_addr.is_some())
    }

    /// Store-to-load forwarding: the value of the youngest store older
    /// than entry `i` with a matching address, if any.
    pub fn forward_from_store(&self, i: usize, addr: u64) -> Option<i64> {
        self.cold
            .iter()
            .take(i)
            .rev()
            .find(|e| e.uop.op == Op::Store && e.mem_addr == Some(addr))
            .map(|e| e.store_value.expect("issued store has value"))
    }

    /// Iterates hot metadata plus cold payload in age order.
    pub fn iter(&self) -> impl Iterator<Item = RobView<'_>> {
        self.seqs
            .iter()
            .zip(self.flags.iter())
            .zip(self.cold.iter())
            .map(|((&seq, &f), entry)| RobView { seq, done: f & flag::DONE != 0, entry })
    }

    /// Event-driven fast-forward's ROB leg: `None` when some entry can
    /// make progress at `now` (a completion is due or a ready entry could
    /// issue), otherwise the earliest scheduled completion among
    /// executing entries (`u64::MAX` when nothing is in flight). The
    /// done-head commit case is the caller's concern.
    pub fn quiet_until(&self, now: u64) -> Option<u64> {
        let mut next = u64::MAX;
        for (&f, &t) in self.flags.iter().zip(self.complete.iter()) {
            if f & flag::DONE != 0 {
                continue;
            }
            if f & flag::EXECUTING != 0 {
                if t <= now {
                    return None;
                }
                next = next.min(t);
            } else if f & flag::READY != 0 {
                // Could issue this cycle (ports and disambiguation
                // permitting — treat any ready entry as progress).
                return None;
            }
            // Otherwise: waiting on a wakeup only a completion delivers.
        }
        Some(next)
    }

    /// Debug cross-check: the hot ready bit must mirror the cold
    /// `inputs_ready` state for issuable entries.
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    pub fn assert_ready_bits_consistent(&self) {
        for i in 0..self.flags.len() {
            if self.flags[i] & (flag::DONE | flag::EXECUTING) != 0 {
                continue;
            }
            assert_eq!(
                self.flags[i] & flag::READY != 0,
                self.cold[i].inputs_ready(),
                "hot READY bit diverged from cold source state at index {i}"
            );
        }
    }
}

/// Who currently provides an architectural register (or the flags).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provider {
    /// A committed (or rename-time-inlined) value.
    Value(i64),
    /// The in-flight producer with this sequence number.
    Rob(u64),
}

/// The speculative rename map: architectural register → provider.
#[derive(Clone, Debug)]
pub struct RenameMap {
    regs: [Provider; NUM_REGS],
    cc: CcProvider,
}

/// Provider for the condition codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcProvider {
    /// Known flags.
    Value(CcFlags),
    /// In-flight flag writer.
    Rob(u64),
}

impl RenameMap {
    /// A map where every register reads the given architectural state.
    pub fn from_arch(regs: &[i64; NUM_REGS], cc: CcFlags) -> RenameMap {
        let mut map = RenameMap { regs: [Provider::Value(0); NUM_REGS], cc: CcProvider::Value(cc) };
        for (i, &v) in regs.iter().enumerate() {
            map.regs[i] = Provider::Value(v);
        }
        map
    }

    /// Current provider of `r`.
    pub fn get(&self, r: Reg) -> Provider {
        self.regs[r.index()]
    }

    /// Points `r` at an in-flight producer.
    pub fn set_rob(&mut self, r: Reg, seq: u64) {
        self.regs[r.index()] = Provider::Rob(seq);
    }

    /// Installs a known value for `r` (commit bypass or live-out
    /// inlining).
    pub fn set_value(&mut self, r: Reg, v: i64) {
        self.regs[r.index()] = Provider::Value(v);
    }

    /// Current provider of the flags.
    pub fn cc(&self) -> CcProvider {
        self.cc
    }

    /// Points the flags at an in-flight producer.
    pub fn set_cc_rob(&mut self, seq: u64) {
        self.cc = CcProvider::Rob(seq);
    }

    /// Installs known flags.
    pub fn set_cc_value(&mut self, flags: CcFlags) {
        self.cc = CcProvider::Value(flags);
    }

    /// Rebuilds the map after a squash: start from the architectural
    /// state, then replay every surviving in-flight entry in age order.
    pub fn rebuild(arch_regs: &[i64; NUM_REGS], arch_cc: CcFlags, rob: &Rob) -> RenameMap {
        let mut map = RenameMap::from_arch(arch_regs, arch_cc);
        for v in rob.iter() {
            let e = v.entry;
            for &(r, val) in &e.pre_writes {
                map.set_value(r, val);
            }
            if let Some(f) = e.pre_cc {
                map.set_cc_value(f);
            }
            if !e.is_ghost {
                if let Some(dst) = e.uop.dst {
                    match e.result {
                        Some(val) if v.done => map.set_value(dst, val),
                        _ => map.set_rob(dst, v.seq),
                    }
                }
                if e.uop.writes_cc {
                    match e.out_cc {
                        Some(f) if v.done => map.set_cc_value(f),
                        _ => map.set_cc_rob(v.seq),
                    }
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(op: Op, dst: Option<Reg>) -> RobEntry {
        let mut uop = Uop::new(op);
        uop.dst = dst;
        RobEntry {
            uop,
            src1: SrcState::Ready(0),
            src2: SrcState::Ready(0),
            cc_src: None,
            result: None,
            out_cc: None,
            mem_addr: None,
            store_value: None,
            predicted_next: None,
            pre_writes: vec![],
            pre_cc: None,
            is_ghost: false,
            pred_source: None,
            source: FetchSource::Unopt,
            stream_id: None,
            stream_end: false,
            blocks_fetch: false,
            vp_forwarded: None,
            stream_shrinkage: 0,
            stream_tail: 0,
        }
    }

    #[test]
    fn src_state_values() {
        assert_eq!(SrcState::Ready(5).value(), Some(5));
        assert_eq!(SrcState::Wait(3).value(), None);
    }

    #[test]
    fn port_classes() {
        assert_eq!(entry(Op::Add, None).port_class(), PortClass::Alu);
        assert_eq!(entry(Op::Load, None).port_class(), PortClass::Load);
        assert_eq!(entry(Op::Store, None).port_class(), PortClass::Store);
        assert_eq!(entry(Op::FpMul, None).port_class(), PortClass::Fp);
        assert_eq!(entry(Op::CmpBr, None).port_class(), PortClass::Alu);
        assert_eq!(entry(Op::Nop, None).port_class(), PortClass::None);
        let mut g = entry(Op::Add, None);
        g.is_ghost = true;
        assert_eq!(g.port_class(), PortClass::None);
    }

    #[test]
    fn soa_status_roundtrip() {
        let mut rob = Rob::new();
        rob.push_back(10, entry(Op::Add, Some(Reg::int(1))), false, false, 0);
        rob.push_back(11, entry(Op::Load, Some(Reg::int(2))), false, false, 0);
        assert_eq!(rob.len(), 2);
        assert!(!rob.front_done());
        assert!(rob.can_issue(0), "ready inputs set the hot READY bit at push");
        rob.mark_issued(0, 7);
        assert!(!rob.can_issue(0));
        assert!(!rob.completes_now(0, 6));
        assert!(rob.completes_now(0, 7));
        rob.set_done(0);
        assert!(rob.front_done());
        assert_eq!(rob.quiet_until(0), None, "entry 1 is ready to issue");
        let c = rob.pop_front().unwrap();
        assert_eq!(c.seq, 10);
        assert!(!c.mispredicted);
        assert_eq!(rob.seq(0), 11);
    }

    #[test]
    fn wake_updates_ready_bit() {
        let mut rob = Rob::new();
        let mut waiting = entry(Op::Add, Some(Reg::int(3)));
        waiting.src1 = SrcState::Wait(5);
        rob.push_back(6, waiting, false, false, 0);
        assert!(!rob.can_issue(0));
        assert_eq!(rob.quiet_until(0), Some(u64::MAX), "nothing in flight, nothing ready");
        rob.wake(4, Some(9), None);
        assert!(!rob.can_issue(0), "wrong producer leaves the wait in place");
        rob.wake(5, Some(9), None);
        assert!(rob.can_issue(0));
        assert_eq!(rob.entry(0).src1, SrcState::Ready(9));
        #[cfg(debug_assertions)]
        rob.assert_ready_bits_consistent();
    }

    #[test]
    fn seq_search_and_squash_truncate() {
        let mut rob = Rob::new();
        for seq in [3u64, 5, 9, 12] {
            rob.push_back(seq, entry(Op::Add, None), false, false, 0);
        }
        assert_eq!(rob.find_seq(9), Some(2));
        assert_eq!(rob.find_seq(4), None);
        assert_eq!(rob.first_younger(5), 2);
        assert_eq!(rob.first_younger(12), 4);
        rob.truncate(rob.first_younger(5));
        assert_eq!(rob.len(), 2);
        assert_eq!(rob.seq(1), 5);
    }

    #[test]
    fn quiet_until_tracks_earliest_completion() {
        let mut rob = Rob::new();
        let mut waiting = entry(Op::Add, None);
        waiting.src1 = SrcState::Wait(1);
        rob.push_back(1, entry(Op::Load, Some(Reg::int(1))), false, false, 0);
        rob.push_back(2, waiting, false, false, 0);
        rob.mark_issued(0, 205);
        assert_eq!(rob.quiet_until(4), Some(205));
        assert_eq!(rob.quiet_until(205), None, "completion due now is progress");
    }

    #[test]
    fn store_helpers_scan_older_entries_only() {
        let mut rob = Rob::new();
        let mut st = entry(Op::Store, None);
        st.mem_addr = Some(0x40);
        st.store_value = Some(77);
        rob.push_back(1, st, false, true, 5);
        let mut unresolved = entry(Op::Store, None);
        unresolved.mem_addr = None;
        rob.push_back(2, unresolved, false, false, 0);
        rob.push_back(3, entry(Op::Load, Some(Reg::int(1))), false, false, 0);
        assert!(rob.older_stores_resolved(1));
        assert!(!rob.older_stores_resolved(2), "unresolved store blocks younger loads");
        assert_eq!(rob.forward_from_store(2, 0x40), Some(77));
        assert_eq!(rob.forward_from_store(2, 0x48), None);
        assert_eq!(rob.forward_from_store(0, 0x40), None, "own index excluded");
    }

    #[test]
    fn rebuild_replays_in_flight_producers() {
        let arch = [7i64; NUM_REGS];
        let r1 = Reg::int(1);
        let r2 = Reg::int(2);
        let mut rob = Rob::new();
        let mut done = entry(Op::Add, Some(r1));
        done.result = Some(42);
        rob.push_back(10, done, true, true, 0);
        rob.push_back(11, entry(Op::Mul, Some(r2)), false, false, 0);
        let map = RenameMap::rebuild(&arch, CcFlags::default(), &rob);
        assert_eq!(map.get(r1), Provider::Value(42));
        assert_eq!(map.get(r2), Provider::Rob(11));
        assert_eq!(map.get(Reg::int(3)), Provider::Value(7));
    }

    #[test]
    fn rebuild_applies_ghost_and_pre_writes() {
        let arch = [0i64; NUM_REGS];
        let r5 = Reg::int(5);
        let mut e = entry(Op::Load, Some(Reg::int(6)));
        e.pre_writes = vec![(r5, 99)];
        e.pre_cc = Some(CcFlags::from_cmp(1, 1));
        let mut rob = Rob::new();
        rob.push_back(3, e, false, false, 0);
        let map = RenameMap::rebuild(&arch, CcFlags::default(), &rob);
        assert_eq!(map.get(r5), Provider::Value(99));
        assert_eq!(map.get(Reg::int(6)), Provider::Rob(3));
        assert!(matches!(map.cc(), CcProvider::Value(f) if f.zf));
    }

    #[test]
    fn inputs_ready_checks_all_slots() {
        let mut e = entry(Op::Add, None);
        assert!(e.inputs_ready());
        e.src2 = SrcState::Wait(9);
        assert!(!e.inputs_ready());
        e.src2 = SrcState::Ready(1);
        e.cc_src = Some(CcSrcState::Wait(4));
        assert!(!e.inputs_ready());
        e.cc_src = Some(CcSrcState::Ready(CcFlags::default()));
        assert!(e.inputs_ready());
    }
}
