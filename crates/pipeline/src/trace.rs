//! High-level execution tracing.
//!
//! Records the *narrative* events of a run — commits, squashes, compacted
//! streams being chosen, compaction outcomes — into a bounded ring, so a
//! user can ask "what did SCC actually do to my loop?" without drowning
//! in per-cycle detail. Enabled per pipeline via
//! [`Pipeline::enable_trace`](crate::Pipeline::enable_trace).

use crate::rob::FetchSource;
use scc_isa::Addr;
use std::collections::VecDeque;
use std::fmt;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A micro-op committed.
    Commit {
        /// Cycle of the commit.
        cycle: u64,
        /// Sequence number.
        seq: u64,
        /// Program counter (macro address).
        pc: Addr,
        /// Rendered micro-op.
        uop: String,
        /// Which front-end source supplied it.
        source: FetchSource,
    },
    /// The pipeline squashed.
    Squash {
        /// Cycle of the squash.
        cycle: u64,
        /// Oldest surviving sequence number.
        at_seq: u64,
        /// Redirect target.
        new_pc: Addr,
        /// Human-readable cause.
        cause: &'static str,
        /// Micro-ops thrown away.
        flushed: u64,
    },
    /// The fetch engine chose a compacted stream.
    StreamChosen {
        /// Cycle of the choice.
        cycle: u64,
        /// Stream id.
        stream_id: u64,
        /// Entry PC.
        pc: Addr,
        /// Micro-ops in the stream.
        len: usize,
    },
    /// The SCC unit finished a compaction pass.
    Compaction {
        /// Cycle the pass finished.
        cycle: u64,
        /// Home region.
        region: Addr,
        /// "committed" / "discarded" / "aborted".
        outcome: &'static str,
        /// Micro-ops eliminated (committed streams only).
        shrinkage: u32,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Commit { cycle, seq, pc, uop, source } => {
                write!(f, "[{cycle:>8}] commit  #{seq} {pc:#x} {uop} ({source:?})")
            }
            TraceEvent::Squash { cycle, at_seq, new_pc, cause, flushed } => write!(
                f,
                "[{cycle:>8}] SQUASH  after #{at_seq} -> {new_pc:#x} ({cause}, {flushed} uops)"
            ),
            TraceEvent::StreamChosen { cycle, stream_id, pc, len } => write!(
                f,
                "[{cycle:>8}] stream  id {stream_id} at {pc:#x} ({len} uops)"
            ),
            TraceEvent::Compaction { cycle, region, outcome, shrinkage } => write!(
                f,
                "[{cycle:>8}] compact region {region:#x}: {outcome} (shrinkage {shrinkage})"
            ),
        }
    }
}

/// A bounded event ring: old events fall off the front.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace { events: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// Records an event.
    pub fn push(&mut self, e: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that aged out of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("... {} earlier events dropped ...\n", self.dropped));
        }
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(cycle: u64) -> TraceEvent {
        TraceEvent::Commit {
            cycle,
            seq: cycle,
            pc: 0x1000,
            uop: "add r1 r1, $1".into(),
            source: FetchSource::Unopt,
        }
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = Trace::new(3);
        for c in 0..5 {
            t.push(commit(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let first = t.events().next().unwrap();
        assert!(matches!(first, TraceEvent::Commit { cycle: 2, .. }));
    }

    #[test]
    fn render_is_line_oriented() {
        let mut t = Trace::new(8);
        t.push(commit(1));
        t.push(TraceEvent::Squash {
            cycle: 2,
            at_seq: 1,
            new_pc: 0x2000,
            cause: "data-invariant",
            flushed: 9,
        });
        t.push(TraceEvent::StreamChosen { cycle: 3, stream_id: 7, pc: 0x1020, len: 5 });
        t.push(TraceEvent::Compaction {
            cycle: 4,
            region: 0x1020,
            outcome: "committed",
            shrinkage: 4,
        });
        let s = t.render();
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("SQUASH"));
        assert!(s.contains("stream  id 7"));
        assert!(s.contains("compact region 0x1020: committed"));
    }

    #[test]
    fn dropped_note_appears() {
        let mut t = Trace::new(1);
        t.push(commit(1));
        t.push(commit(2));
        assert!(t.render().starts_with("... 1 earlier events dropped"));
        assert!(!t.is_empty());
    }
}
