//! Pipeline configuration.

use scc_core::SccConfig;
use scc_memsys::HierarchyConfig;
use scc_predictors::{BranchPredictorKind, ValuePredictorKind};
use scc_uopcache::UopCacheConfig;

/// Core (backend) sizing and latencies, defaulting to Ice Lake-like
/// values per Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreParams {
    /// Fused micro-ops fetched per cycle (Table I: 6).
    pub fetch_width: usize,
    /// Macro-instructions the legacy decoder handles per cycle.
    pub decode_width: usize,
    /// Micro-ops renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Micro-ops committed per cycle.
    pub commit_width: usize,
    /// Reorder buffer entries (Ice Lake: 352).
    pub rob_entries: usize,
    /// Instruction decode queue (IDQ) entries (Table I: 140).
    pub idq_entries: usize,
    /// Unified scheduler window entries.
    pub sched_entries: usize,
    /// Integer ALU ports.
    pub alu_ports: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// FP/SIMD ports.
    pub fp_ports: usize,
    /// Extra pipeline latency of the legacy decode path versus the
    /// micro-op cache path, in cycles.
    pub decode_latency: u64,
    /// Front-end refill penalty on a squash, in cycles.
    pub mispredict_penalty: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
    /// FP operation latency.
    pub fp_latency: u64,
    /// SIMD stand-in operation latency.
    pub simd_latency: u64,
    /// Micro-fusion at decode (the artifact's `--enable-micro-fusion`):
    /// load+consumer pairs occupy one fetch / micro-op cache slot.
    pub micro_fusion: bool,
}

impl Default for CoreParams {
    fn default() -> CoreParams {
        CoreParams {
            fetch_width: 6,
            decode_width: 5,
            rename_width: 6,
            commit_width: 8,
            rob_entries: 352,
            idq_entries: 140,
            sched_entries: 160,
            alu_ports: 4,
            load_ports: 2,
            store_ports: 1,
            fp_ports: 2,
            decode_latency: 5,
            mispredict_penalty: 12,
            mul_latency: 3,
            div_latency: 18,
            fp_latency: 4,
            simd_latency: 5,
            micro_fusion: true,
        }
    }
}

/// Front-end organization: the unpartitioned baseline or the SCC design.
#[derive(Clone, Debug)]
pub enum FrontendMode {
    /// Conventional single micro-op cache, no SCC.
    Baseline {
        /// Micro-op cache geometry.
        uop_cache: UopCacheConfig,
    },
    /// Partitioned micro-op cache with the SCC unit.
    Scc {
        /// Unoptimized partition geometry.
        unopt: UopCacheConfig,
        /// Optimized partition geometry.
        opt: UopCacheConfig,
        /// SCC unit configuration (enabled optimizations, thresholds).
        scc: SccConfig,
    },
}

impl FrontendMode {
    /// The paper's baseline: 48-set unpartitioned cache.
    pub fn baseline() -> FrontendMode {
        FrontendMode::Baseline { uop_cache: UopCacheConfig::baseline() }
    }

    /// The paper's best SCC split: 24-set unoptimized + 24-set optimized
    /// partitions (appendix flags).
    pub fn scc(scc: SccConfig) -> FrontendMode {
        FrontendMode::Scc {
            unopt: UopCacheConfig::unopt_partition(24),
            opt: UopCacheConfig::opt_partition(24),
            scc,
        }
    }

    /// True when the SCC unit is present.
    pub fn has_scc(&self) -> bool {
        matches!(self, FrontendMode::Scc { .. })
    }
}

/// Complete pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Backend sizing.
    pub core: CoreParams,
    /// Cache hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Front-end organization.
    pub frontend: FrontendMode,
    /// Branch direction predictor.
    pub branch_predictor: BranchPredictorKind,
    /// Value predictor (`--lvpredType`).
    pub value_predictor: ValuePredictorKind,
    /// Cycles a region stays forced to the unoptimized partition after an
    /// SCC-caused squash.
    pub force_unopt_window: u64,
    /// Classic value-prediction forwarding at rename (the paper's
    /// baseline runs with `--enableValuePredForwinding
    /// --predictionConfidenceThreshold=15`): loads whose value the
    /// predictor forecasts with at least this confidence hand the
    /// predicted value to their dependents at rename, validating at
    /// execute. `None` disables forwarding (the SCC configurations use
    /// the predictor through the compaction engine instead).
    pub vp_forwarding: Option<u8>,
    /// Event-driven stall fast-forward: when the machine is provably
    /// quiescent until a known future cycle, the run loop jumps straight
    /// to that cycle instead of stepping through the stall. Simulated
    /// behavior, stats, traces, and audit output are byte-identical
    /// either way (enforced by the `fast_forward_identity` tests and the
    /// `full+percycle` fuzz ablation); disabling it only costs wall-clock
    /// time. On by default.
    pub fast_forward: bool,
}

impl PipelineConfig {
    /// Baseline machine.
    pub fn baseline() -> PipelineConfig {
        PipelineConfig {
            core: CoreParams::default(),
            hierarchy: HierarchyConfig::icelake(),
            frontend: FrontendMode::baseline(),
            branch_predictor: BranchPredictorKind::TageLite,
            value_predictor: ValuePredictorKind::Eves,
            force_unopt_window: 64,
            vp_forwarding: None,
            fast_forward: true,
        }
    }

    /// Baseline with classic value-prediction forwarding at the paper's
    /// conservative threshold (15 of 15).
    pub fn baseline_with_vp_forwarding() -> PipelineConfig {
        PipelineConfig { vp_forwarding: Some(15), ..PipelineConfig::baseline() }
    }

    /// Full-SCC machine with the paper's defaults.
    pub fn scc_full() -> PipelineConfig {
        PipelineConfig {
            frontend: FrontendMode::scc(SccConfig::full()),
            ..PipelineConfig::baseline()
        }
    }

    /// A stable content key naming every knob of this configuration.
    ///
    /// Result caches key simulations on this string, so it must be a
    /// *complete* identity: two configs produce equal keys iff they are
    /// field-for-field identical. Unlike a `Debug` rendering (whose
    /// format is not a stability guarantee and silently drops fields
    /// marked `#[allow]`/skipped in custom impls), the exhaustive
    /// destructuring below stops compiling when a field is added,
    /// forcing the key to stay complete.
    pub fn content_key(&self) -> String {
        use scc_core::OptFlags;
        use scc_memsys::{CacheConfig, ReplacementPolicy};
        use std::fmt::Write as _;
        let PipelineConfig {
            core,
            hierarchy,
            frontend,
            branch_predictor,
            value_predictor,
            force_unopt_window,
            vp_forwarding,
            fast_forward,
        } = self;
        let CoreParams {
            fetch_width,
            decode_width,
            rename_width,
            commit_width,
            rob_entries,
            idq_entries,
            sched_entries,
            alu_ports,
            load_ports,
            store_ports,
            fp_ports,
            decode_latency,
            mispredict_penalty,
            mul_latency,
            div_latency,
            fp_latency,
            simd_latency,
            micro_fusion,
        } = core;
        let mut k = String::with_capacity(320);
        write!(
            k,
            "core:{fetch_width},{decode_width},{rename_width},{commit_width},{rob_entries},\
             {idq_entries},{sched_entries},{alu_ports},{load_ports},{store_ports},{fp_ports},\
             {decode_latency},{mispredict_penalty},{mul_latency},{div_latency},{fp_latency},\
             {simd_latency},{micro_fusion};"
        )
        .expect("writing to String cannot fail");
        let HierarchyConfig { l1i, l1d, l2, l3, l1_latency, l2_latency, l3_latency, dram_latency } =
            hierarchy;
        for (name, c) in [("l1i", l1i), ("l1d", l1d), ("l2", l2), ("l3", l3)] {
            let CacheConfig { size_bytes, ways, line_bytes, replacement } = c;
            let rep = match replacement {
                ReplacementPolicy::Lru => "lru",
                ReplacementPolicy::Random => "rand",
            };
            write!(k, "{name}:{size_bytes},{ways},{line_bytes},{rep};")
                .expect("writing to String cannot fail");
        }
        write!(k, "memlat:{l1_latency},{l2_latency},{l3_latency},{dram_latency};")
            .expect("writing to String cannot fail");
        fn push_uop_cache(k: &mut String, name: &str, c: &UopCacheConfig) {
            let UopCacheConfig {
                sets,
                ways,
                uops_per_line,
                max_ways_per_region,
                hotness_threshold,
                decay_period,
            } = c;
            write!(
                k,
                "{name}:{sets},{ways},{uops_per_line},{max_ways_per_region},{hotness_threshold},\
                 {decay_period};"
            )
            .expect("writing to String cannot fail");
        }
        match frontend {
            FrontendMode::Baseline { uop_cache } => {
                k.push_str("fe:baseline;");
                push_uop_cache(&mut k, "uc", uop_cache);
            }
            FrontendMode::Scc { unopt, opt, scc } => {
                k.push_str("fe:scc;");
                push_uop_cache(&mut k, "unopt", unopt);
                push_uop_cache(&mut k, "opt", opt);
                let SccConfig {
                    opts,
                    confidence_threshold,
                    max_data_invariants,
                    max_control_invariants,
                    max_branches,
                    write_buffer_uops,
                    compaction_threshold,
                    max_constant_width,
                    request_queue_len,
                } = scc;
                let OptFlags {
                    move_elim,
                    const_fold,
                    const_prop,
                    data_invariants,
                    branch_fold,
                    control_invariants,
                    cc_tracking,
                    complex_alu,
                } = opts;
                write!(
                    k,
                    "opts:{move_elim},{const_fold},{const_prop},{data_invariants},{branch_fold},\
                     {control_invariants},{cc_tracking},{complex_alu};"
                )
                .expect("writing to String cannot fail");
                let mcw = match max_constant_width {
                    Some(w) => w.to_string(),
                    None => "none".to_string(),
                };
                write!(
                    k,
                    "scc:{confidence_threshold},{max_data_invariants},{max_control_invariants},\
                     {max_branches},{write_buffer_uops},{compaction_threshold},{mcw},\
                     {request_queue_len};"
                )
                .expect("writing to String cannot fail");
            }
        }
        let bp = match branch_predictor {
            BranchPredictorKind::Bimodal => "bimodal",
            BranchPredictorKind::GShare => "gshare",
            BranchPredictorKind::TageLite => "tage",
        };
        let vp = match value_predictor {
            ValuePredictorKind::LastValue => "lastvalue",
            ValuePredictorKind::Stride => "stride",
            ValuePredictorKind::Eves => "eves",
            ValuePredictorKind::H3vp => "h3vp",
        };
        let vpf = match vp_forwarding {
            Some(t) => t.to_string(),
            None => "none".to_string(),
        };
        write!(k, "bp:{bp};vp:{vp};fuw:{force_unopt_window};vpf:{vpf};ff:{fast_forward}")
            .expect("writing to String cannot fail");
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let c = CoreParams::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.rob_entries, 352);
        assert_eq!(c.idq_entries, 140);
    }

    #[test]
    fn frontend_modes() {
        assert!(!FrontendMode::baseline().has_scc());
        let m = FrontendMode::scc(SccConfig::full());
        assert!(m.has_scc());
        if let FrontendMode::Scc { unopt, opt, .. } = m {
            assert_eq!(unopt.sets, 24);
            assert_eq!(opt.sets, 24);
            assert_eq!(opt.ways, 4);
        }
    }

    #[test]
    fn config_constructors() {
        assert!(!PipelineConfig::baseline().frontend.has_scc());
        assert!(PipelineConfig::scc_full().frontend.has_scc());
    }

    #[test]
    fn content_key_is_collision_free_across_single_field_edits() {
        // The cache-identity property: flipping any one knob must change
        // the key, and identical configs must produce identical keys.
        let base = PipelineConfig::scc_full();
        assert_eq!(base.content_key(), PipelineConfig::scc_full().content_key());
        let mut variants: Vec<PipelineConfig> = Vec::new();
        macro_rules! variant {
            ($edit:expr) => {{
                let mut v = base.clone();
                #[allow(clippy::redundant_closure_call)]
                ($edit)(&mut v);
                variants.push(v);
            }};
        }
        variant!(|v: &mut PipelineConfig| v.core.fetch_width = 7);
        variant!(|v: &mut PipelineConfig| v.core.rob_entries = 64);
        variant!(|v: &mut PipelineConfig| v.core.commit_width = 2);
        variant!(|v: &mut PipelineConfig| v.core.div_latency += 1);
        variant!(|v: &mut PipelineConfig| v.core.micro_fusion = false);
        variant!(|v: &mut PipelineConfig| v.hierarchy.l1_latency += 1);
        variant!(|v: &mut PipelineConfig| v.hierarchy.l1d.ways *= 2);
        variant!(|v: &mut PipelineConfig| v.branch_predictor = BranchPredictorKind::Bimodal);
        variant!(|v: &mut PipelineConfig| v.value_predictor = ValuePredictorKind::Stride);
        variant!(|v: &mut PipelineConfig| v.force_unopt_window = 65);
        variant!(|v: &mut PipelineConfig| v.vp_forwarding = Some(15));
        variant!(|v: &mut PipelineConfig| v.fast_forward = false);
        variant!(|v: &mut PipelineConfig| {
            if let FrontendMode::Scc { scc, .. } = &mut v.frontend {
                scc.opts.branch_fold = false;
            }
        });
        variant!(|v: &mut PipelineConfig| {
            if let FrontendMode::Scc { scc, .. } = &mut v.frontend {
                scc.max_constant_width = Some(8);
            }
        });
        variant!(|v: &mut PipelineConfig| {
            if let FrontendMode::Scc { scc, .. } = &mut v.frontend {
                scc.confidence_threshold += 1;
            }
        });
        variant!(|v: &mut PipelineConfig| {
            if let FrontendMode::Scc { unopt, .. } = &mut v.frontend {
                unopt.sets = 12;
            }
        });
        variant!(|v: &mut PipelineConfig| v.frontend = FrontendMode::baseline());
        let mut keys: Vec<String> = variants.iter().map(PipelineConfig::content_key).collect();
        keys.push(base.content_key());
        let unique: std::collections::HashSet<&str> =
            keys.iter().map(String::as_str).collect();
        assert_eq!(unique.len(), keys.len(), "content keys collided: {keys:#?}");
    }
}
