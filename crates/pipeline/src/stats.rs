//! Pipeline statistics: every event the figures and the energy model
//! need, plus the typed metrics registry ([`PipelineStats::metrics`])
//! that exposes each of them as a `(name, value)` pair.

use crate::rob::FetchSource;
use scc_memsys::HierarchyStats;
use scc_uopcache::{OptPartitionStats, UnoptPartitionStats};

/// One registered metric value: a monotonic event count or a derived
/// ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Derived floating-point gauge (rates, ratios).
    Gauge(f64),
}

/// One named metric, as iterated by [`PipelineStats::metrics`].
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Dotted metric name (e.g. `opt.inserts`, `l1i.hits`, `ipc`).
    pub name: String,
    /// The value.
    pub value: MetricValue,
}

impl Metric {
    fn counter(name: impl Into<String>, value: u64) -> Metric {
        Metric { name: name.into(), value: MetricValue::Counter(value) }
    }

    fn gauge(name: impl Into<String>, value: f64) -> Metric {
        Metric { name: name.into(), value: MetricValue::Gauge(value) }
    }
}

/// Aggregate event counts from one simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineStats {
    /// Cycles simulated. Under event-driven fast-forward the pipeline
    /// credits stalled spans in bulk (one jump instead of N no-op steps),
    /// but the final count is identical to per-cycle stepping — nothing
    /// else in the struct records whether a cycle was stepped or skipped.
    pub cycles: u64,
    /// Committed micro-ops (excluding live-out ghosts) — Figure 6 top's
    /// metric.
    pub committed_uops: u64,
    /// Program-distance metric: committed micro-ops *plus* the micro-ops
    /// SCC eliminated from committed streams. Invariant across
    /// optimization levels, so interval-based sampling (SimPoint) paces
    /// all configurations identically.
    pub program_uops: u64,
    /// Committed live-out ghost installs (§VII-C: ~0.78% of instructions
    /// carry live-outs).
    pub committed_ghosts: u64,
    /// Committed live-out register writes.
    pub live_out_writes: u64,
    /// Micro-ops fetched from the legacy decode path (instruction cache).
    pub uops_from_icache: u64,
    /// Micro-ops fetched from the unoptimized partition.
    pub uops_from_unopt: u64,
    /// Micro-ops fetched from the optimized partition.
    pub uops_from_opt: u64,
    /// Micro-ops squashed (fetched+renamed but thrown away).
    pub squashed_uops: u64,
    /// Squash events.
    pub squashes: u64,
    /// Squashes caused by SCC data-invariant validation failures.
    pub scc_data_squashes: u64,
    /// Squashes caused by SCC control-invariant failures.
    pub scc_control_squashes: u64,
    /// Ordinary branch-misprediction squashes.
    pub branch_squashes: u64,
    /// Conditional branches resolved.
    pub branches_resolved: u64,
    /// Conditional branches mispredicted.
    pub branches_mispredicted: u64,
    /// Value-predictor training events.
    pub vp_trains: u64,
    /// Classic VP-forwarding installs at rename (baseline feature).
    pub vp_forwards: u64,
    /// VP-forwarding validation failures (squashes).
    pub vp_forward_fails: u64,
    /// Value-predictor probes (SCC + profitability re-checks).
    pub vp_probes: u64,
    /// Data invariants validated successfully.
    pub invariants_validated: u64,
    /// Data invariants that failed validation.
    pub invariants_failed: u64,
    /// Compaction passes run.
    pub compactions: u64,
    /// Compacted streams committed to the optimized partition.
    pub streams_committed: u64,
    /// Compactions discarded below the threshold.
    pub compactions_discarded: u64,
    /// Compactions aborted (self-loop / SMC).
    pub compactions_aborted: u64,
    /// Cycles the SCC unit was busy.
    pub scc_busy_cycles: u64,
    /// SCC front-end ALU operations (energy).
    pub scc_alu_ops: u64,
    /// Renamed micro-ops (energy: rename + ROB write).
    pub renamed_uops: u64,
    /// Executed ALU ops (energy).
    pub exec_alu: u64,
    /// Executed mul/div ops (energy).
    pub exec_muldiv: u64,
    /// Executed FP/SIMD ops (energy).
    pub exec_fp: u64,
    /// Executed loads (energy).
    pub exec_loads: u64,
    /// Committed stores (energy).
    pub exec_stores: u64,
    /// Branch predictor lookups (energy; doubled-port probes included).
    pub bp_lookups: u64,
    /// Micro-op cache lookups, both partitions (energy).
    pub uopcache_lookups: u64,
    /// Legacy decode events (energy).
    pub decoded_macros: u64,
    /// Memory hierarchy counters.
    pub hierarchy: HierarchyStats,
    /// Unoptimized partition counters.
    pub unopt: UnoptPartitionStats,
    /// Optimized partition counters.
    pub opt: OptPartitionStats,
}

impl PipelineStats {
    /// Instructions (micro-ops) per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Fraction of fetched micro-ops that were squashed — the paper's
    /// Figure 6 (bottom) squash-overhead metric.
    pub fn squash_overhead(&self) -> f64 {
        let fetched = self.committed_uops + self.squashed_uops;
        if fetched == 0 {
            0.0
        } else {
            self.squashed_uops as f64 / fetched as f64
        }
    }

    /// Branch misprediction rate.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            1000.0 * self.branches_mispredicted as f64 / self.committed_uops as f64
        }
    }

    /// Total micro-ops delivered by the front-end, by source.
    pub fn fetched_by(&self, src: FetchSource) -> u64 {
        match src {
            FetchSource::Icache => self.uops_from_icache,
            FetchSource::Unopt => self.uops_from_unopt,
            FetchSource::Opt => self.uops_from_opt,
        }
    }

    /// Every counter of the run (including the nested hierarchy and
    /// partition counters, with dotted prefixes) plus the derived gauges,
    /// as a flat list of named metrics.
    ///
    /// The exhaustive destructuring below is the registry's single source
    /// of truth: adding a stats field without listing it here fails to
    /// compile, so serialized metrics can never silently lag the struct.
    pub fn metrics(&self) -> Vec<Metric> {
        let PipelineStats {
            cycles,
            committed_uops,
            program_uops,
            committed_ghosts,
            live_out_writes,
            uops_from_icache,
            uops_from_unopt,
            uops_from_opt,
            squashed_uops,
            squashes,
            scc_data_squashes,
            scc_control_squashes,
            branch_squashes,
            branches_resolved,
            branches_mispredicted,
            vp_trains,
            vp_forwards,
            vp_forward_fails,
            vp_probes,
            invariants_validated,
            invariants_failed,
            compactions,
            streams_committed,
            compactions_discarded,
            compactions_aborted,
            scc_busy_cycles,
            scc_alu_ops,
            renamed_uops,
            exec_alu,
            exec_muldiv,
            exec_fp,
            exec_loads,
            exec_stores,
            bp_lookups,
            uopcache_lookups,
            decoded_macros,
            hierarchy,
            unopt,
            opt,
        } = self;
        let mut out = Vec::with_capacity(64);
        for (name, value) in [
            ("cycles", *cycles),
            ("committed_uops", *committed_uops),
            ("program_uops", *program_uops),
            ("committed_ghosts", *committed_ghosts),
            ("live_out_writes", *live_out_writes),
            ("uops_from_icache", *uops_from_icache),
            ("uops_from_unopt", *uops_from_unopt),
            ("uops_from_opt", *uops_from_opt),
            ("squashed_uops", *squashed_uops),
            ("squashes", *squashes),
            ("scc_data_squashes", *scc_data_squashes),
            ("scc_control_squashes", *scc_control_squashes),
            ("branch_squashes", *branch_squashes),
            ("branches_resolved", *branches_resolved),
            ("branches_mispredicted", *branches_mispredicted),
            ("vp_trains", *vp_trains),
            ("vp_forwards", *vp_forwards),
            ("vp_forward_fails", *vp_forward_fails),
            ("vp_probes", *vp_probes),
            ("invariants_validated", *invariants_validated),
            ("invariants_failed", *invariants_failed),
            ("compactions", *compactions),
            ("streams_committed", *streams_committed),
            ("compactions_discarded", *compactions_discarded),
            ("compactions_aborted", *compactions_aborted),
            ("scc_busy_cycles", *scc_busy_cycles),
            ("scc_alu_ops", *scc_alu_ops),
            ("renamed_uops", *renamed_uops),
            ("exec_alu", *exec_alu),
            ("exec_muldiv", *exec_muldiv),
            ("exec_fp", *exec_fp),
            ("exec_loads", *exec_loads),
            ("exec_stores", *exec_stores),
            ("bp_lookups", *bp_lookups),
            ("uopcache_lookups", *uopcache_lookups),
            ("decoded_macros", *decoded_macros),
        ] {
            out.push(Metric::counter(name, value));
        }
        for (name, value) in hierarchy.counters() {
            out.push(Metric::counter(name, value));
        }
        for (name, value) in unopt.counters() {
            out.push(Metric::counter(format!("unopt.{name}"), value));
        }
        for (name, value) in opt.counters() {
            out.push(Metric::counter(format!("opt.{name}"), value));
        }
        out.push(Metric::gauge("ipc", self.ipc()));
        out.push(Metric::gauge("squash_overhead", self.squash_overhead()));
        out.push(Metric::gauge("branch_mpki", self.branch_mpki()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = PipelineStats {
            cycles: 100,
            committed_uops: 250,
            squashed_uops: 50,
            branches_mispredicted: 5,
            ..PipelineStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.squash_overhead() - 50.0 / 300.0).abs() < 1e-12);
        assert!((s.branch_mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = PipelineStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.squash_overhead(), 0.0);
        assert_eq!(s.branch_mpki(), 0.0);
    }

    #[test]
    fn metrics_cover_every_counter_once() {
        let s = PipelineStats {
            cycles: 100,
            committed_uops: 250,
            invariants_validated: 7,
            ..PipelineStats::default()
        };
        let metrics = s.metrics();
        // Unique names.
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "metric names must be unique");
        // Spot-check values land under the right names.
        let get = |n: &str| metrics.iter().find(|m| m.name == n).unwrap().value;
        assert_eq!(get("cycles"), MetricValue::Counter(100));
        assert_eq!(get("invariants_validated"), MetricValue::Counter(7));
        assert_eq!(get("ipc"), MetricValue::Gauge(2.5));
        // Nested registries are included with dotted prefixes.
        assert!(metrics.iter().any(|m| m.name == "l1i.hits"));
        assert!(metrics.iter().any(|m| m.name == "unopt.fills"));
        assert!(metrics.iter().any(|m| m.name == "opt.inserts"));
        assert!(metrics.iter().any(|m| m.name == "dram.accesses"));
    }

    #[test]
    fn fetched_by_source() {
        let s = PipelineStats {
            uops_from_icache: 1,
            uops_from_unopt: 2,
            uops_from_opt: 3,
            ..PipelineStats::default()
        };
        assert_eq!(s.fetched_by(FetchSource::Icache), 1);
        assert_eq!(s.fetched_by(FetchSource::Unopt), 2);
        assert_eq!(s.fetched_by(FetchSource::Opt), 3);
    }
}
