//! Cycle-level out-of-order core integrating the SCC front-end.
//!
//! This crate is the timing substrate of the reproduction: a superscalar
//! out-of-order pipeline modeled after Intel's Ice Lake (Table I of the
//! paper) with
//!
//! * a fetch engine whose state machine switches between the legacy
//!   decode pipeline, the unoptimized micro-op cache partition, and —
//!   when SCC is enabled and the profitability unit approves — the
//!   optimized partition holding compacted streams (paper Figure 5);
//! * rename with rename-time inlining of SCC live-outs (physical register
//!   inlining), a reorder buffer, a unified scheduler with per-class
//!   execution ports, conservative memory disambiguation with
//!   store-to-load forwarding, and in-order commit;
//! * full squash/recovery, including the paper's two-condition SCC
//!   recovery policy (redirect to the unoptimized partition when a
//!   prediction source from the optimized partition misspeculates);
//! * invariant validation: data-invariant prediction sources compare their
//!   executed result against the predicted value, control-invariant
//!   branches compare their resolved target against the encoded stream
//!   path, and confidence counters are rewarded/penalized exactly as §V
//!   describes.
//!
//! The architectural contract — checked by differential tests against the
//! in-order reference interpreter — is that squash-and-reexecute makes all
//! SCC speculation architecturally invisible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod pipeline;
mod rob;
mod stats;
pub mod trace;

pub use config::{CoreParams, FrontendMode, PipelineConfig};
pub use pipeline::{Pipeline, PipelineResult, RunOutcome};
pub use rob::FetchSource;
pub use stats::{Metric, MetricValue, PipelineStats};
pub use trace::{Trace, TraceEvent};
