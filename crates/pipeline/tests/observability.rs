//! Observability contract tests: attaching a sink must not perturb the
//! simulation, and every emitted event must reconcile with the stats
//! counter incremented at the same site.

use scc_isa::trace::{shared, CollectSink, Event};
use scc_isa::{Cond, ProgramBuilder, Program, Reg};
use scc_pipeline::{Pipeline, PipelineConfig, PipelineResult, RunOutcome};
use std::cell::RefCell;
use std::rc::Rc;

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// A hot, fetch-bound loop with perfectly invariant loads (the shape of
/// `behavior.rs`'s best case): enough iterations to cross the hotness
/// threshold, train the predictors, compact, and stream from the
/// optimized partition.
fn hot_program() -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x9000, &[10, 3]);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0);
    b.mov_imm(r(2), 2000);
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0);
    b.add_imm(r(4), r(3), 2);
    b.shl_imm(r(5), r(4), 1);
    b.load(r(6), r(0), 8);
    b.xor(r(7), r(5), r(6));
    b.and_imm(r(8), r(7), 0xFF);
    b.add(r(1), r(1), r(8));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    b.build()
}

fn run_observed(p: &Program) -> (PipelineResult, Rc<RefCell<CollectSink>>) {
    let sink = shared(CollectSink::default());
    let mut pipe = Pipeline::new(p, PipelineConfig::scc_full());
    pipe.attach_sink(sink.clone());
    let res = pipe.run(10_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    (res, sink)
}

#[test]
fn attaching_a_sink_does_not_perturb_the_run() {
    let p = hot_program();
    let mut plain = Pipeline::new(&p, PipelineConfig::scc_full());
    let base = plain.run(10_000_000);
    let (observed, _) = run_observed(&p);
    assert_eq!(base.snapshot, observed.snapshot, "architectural state diverged");
    assert_eq!(base.stats, observed.stats, "stats diverged under observation");
}

#[test]
fn events_reconcile_with_stats() {
    let p = hot_program();
    let (res, sink) = run_observed(&p);
    let s = &res.stats;
    assert!(s.compactions > 0, "workload never compacted: {s:?}");
    assert!(s.uops_from_opt > 0, "workload never streamed: {s:?}");

    let sink = sink.borrow();
    let count = |f: &dyn Fn(&Event) -> bool| sink.events.iter().filter(|e| f(e)).count() as u64;

    // One CompactionPass per engine invocation; stream ids only on commits.
    assert_eq!(count(&|e| matches!(e, Event::CompactionPass { .. })), s.compactions);
    assert_eq!(
        count(&|e| matches!(e, Event::CompactionPass { stream_id: Some(_), .. })),
        s.streams_committed
    );
    // Assumption outcomes are 1:1 with their counters.
    assert_eq!(count(&|e| matches!(e, Event::AssumptionValidated { .. })), s.invariants_validated);
    assert_eq!(
        count(&|e| matches!(e, Event::AssumptionFailed { kind: "data", .. })),
        s.invariants_failed
    );
    assert_eq!(
        count(&|e| matches!(e, Event::AssumptionFailed { kind: "control", .. })),
        s.scc_control_squashes
    );
    // Every squash opens exactly one recovery window.
    assert_eq!(count(&|e| matches!(e, Event::SquashWindow { .. })), s.squashes);
    // Partition lifecycle mirrors the partition counters.
    assert_eq!(count(&|e| matches!(e, Event::RegionFilled { .. })), s.unopt.fills);
    assert_eq!(count(&|e| matches!(e, Event::StreamInserted { .. })), s.opt.inserts);
    // Fetch-mix intervals tile the run: per-source sums equal the totals.
    let mut mix = (0u64, 0u64, 0u64);
    let mut last_end = 0;
    for e in &sink.events {
        if let Event::FetchInterval { start_cycle, end_cycle, icache, unopt, opt } = e {
            assert!(*start_cycle >= last_end, "intervals overlap");
            last_end = *end_cycle;
            mix.0 += icache;
            mix.1 += unopt;
            mix.2 += opt;
        }
    }
    assert_eq!(mix, (s.uops_from_icache, s.uops_from_unopt, s.uops_from_opt));
    // Audit decisions flow once per compaction pass and cover every
    // scanned micro-op (at least the region's worth per committed pass).
    assert!(count(&|e| matches!(e, Event::Decision { .. })) > 0, "no audit decisions");
}
