//! Long-running differential soak: hundreds of random programs across
//! every configuration axis. Run explicitly with
//!
//! ```text
//! cargo test --release -p scc-pipeline --test soak -- --ignored
//! ```

use scc_core::{OptFlags, SccConfig};
use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::{ArchSnapshot, Machine, Program};
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig, RunOutcome};

fn reference(p: &Program) -> ArchSnapshot {
    let mut m = Machine::new(p);
    let r = m.run(20_000_000).expect("reference run");
    assert!(r.halted);
    m.snapshot()
}

fn check(p: &Program, cfg: PipelineConfig, want: &ArchSnapshot, label: &str, seed: u64) {
    let mut pipe = Pipeline::new(p, cfg);
    let r = pipe.run(100_000_000);
    assert_eq!(r.outcome, RunOutcome::Halted, "{label} hung on seed {seed}");
    assert_eq!(&r.snapshot, want, "{label} diverged on seed {seed}");
}

#[test]
#[ignore = "soak test: ~minutes; run with -- --ignored"]
fn five_hundred_seeds_every_axis() {
    let corpus = [
        RandProgConfig::default(),
        RandProgConfig { blocks: 3, block_len: 14, max_trips: 300, ..RandProgConfig::default() },
        RandProgConfig { with_fp: false, max_trips: 50, ..RandProgConfig::default() },
        RandProgConfig { with_calls: false, with_string_ops: false, ..RandProgConfig::default() },
    ];
    for seed in 0..500u64 {
        let cfg = &corpus[(seed % corpus.len() as u64) as usize];
        let p = random_program(seed * 7 + 1, cfg);
        let want = reference(&p);
        check(&p, PipelineConfig::baseline(), &want, "baseline", seed);
        check(&p, PipelineConfig::scc_full(), &want, "scc", seed);
        match seed % 5 {
            0 => check(
                &p,
                PipelineConfig::baseline_with_vp_forwarding(),
                &want,
                "vpfwd",
                seed,
            ),
            1 => {
                let mut scc = SccConfig::full();
                scc.max_constant_width = Some(8);
                check(
                    &p,
                    PipelineConfig {
                        frontend: FrontendMode::scc(scc),
                        ..PipelineConfig::baseline()
                    },
                    &want,
                    "width8",
                    seed,
                );
            }
            2 => check(
                &p,
                PipelineConfig {
                    frontend: FrontendMode::scc(SccConfig::with_opts(OptFlags::future_work())),
                    ..PipelineConfig::baseline()
                },
                &want,
                "future-work",
                seed,
            ),
            3 => {
                let mut no_fusion = PipelineConfig::scc_full();
                no_fusion.core.micro_fusion = false;
                check(&p, no_fusion, &want, "no-fusion", seed);
            }
            _ => {
                let mut h3 = PipelineConfig::scc_full();
                h3.value_predictor = scc_predictors::ValuePredictorKind::H3vp;
                check(&p, h3, &want, "h3vp", seed);
            }
        }
    }
}
