//! Targeted behavioural tests of the pipeline's SCC machinery: hot-loop
//! compaction, fetch-source migration, validation squashes, recovery, and
//! the partitioned front-end.

use scc_core::SccConfig;
use scc_isa::{Cond, Machine, Program, ProgramBuilder, Reg};
use scc_pipeline::{FrontendMode, Pipeline, PipelineConfig, PipelineResult, RunOutcome};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// A hot, fetch-bound loop with perfectly invariant loads: SCC's best
/// case. The body is wide (10 micro-ops) so the baseline is limited by
/// fetch/rename bandwidth and eliminating micro-ops buys real cycles.
fn invariant_loop(trips: i64) -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x9000, &[10, 3]);
    b.mov_imm(r(0), 0x9000); // table base
    b.mov_imm(r(1), 0); // acc
    b.mov_imm(r(2), trips); // counter
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0); // invariant load: always 10
    b.add_imm(r(4), r(3), 2); // folds under the invariant (12)
    b.shl_imm(r(5), r(4), 1); // folds (24)
    b.load(r(6), r(0), 8); // invariant load: always 3
    b.xor(r(7), r(5), r(6)); // folds (27)
    b.and_imm(r(8), r(7), 0xFF); // folds (27)
    b.add(r(1), r(1), r(8)); // acc += 27 (live chain)
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    b.build()
}

fn run(p: &Program, cfg: PipelineConfig) -> PipelineResult {
    let mut pipe = Pipeline::new(p, cfg);
    let res = pipe.run(10_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "must halt");
    res
}

#[test]
fn hot_invariant_loop_is_compacted_and_streamed() {
    let p = invariant_loop(2000);
    let res = run(&p, PipelineConfig::scc_full());
    assert!(res.stats.streams_committed >= 1, "the hot loop must be compacted");
    assert!(
        res.stats.uops_from_opt > res.stats.uops_from_unopt,
        "steady state should stream from the optimized partition: opt={} unopt={}",
        res.stats.uops_from_opt,
        res.stats.uops_from_unopt
    );
    // Architectural result is exact.
    let acc = res.snapshot.regs[1];
    assert_eq!(acc, 2000 * 27);
}

#[test]
fn scc_reduces_committed_uops_and_cycles() {
    let p = invariant_loop(2000);
    let base = run(&p, PipelineConfig::baseline());
    let scc = run(&p, PipelineConfig::scc_full());
    assert!(
        scc.stats.committed_uops < base.stats.committed_uops,
        "SCC must eliminate committed micro-ops: {} vs {}",
        scc.stats.committed_uops,
        base.stats.committed_uops
    );
    assert!(
        scc.stats.cycles < base.stats.cycles,
        "SCC should speed up the invariant loop: {} vs {} cycles",
        scc.stats.cycles,
        base.stats.cycles
    );
    assert_eq!(scc.snapshot, base.snapshot, "same architectural result");
}

#[test]
fn dataset_change_triggers_validation_squash_and_recovery() {
    // Phase 1 trains an invariant (table[0] = 10); phase 2 changes the
    // value mid-run via a store, so streamed invariants go stale.
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 10);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0);
    b.mov_imm(r(2), 1500); // phase 1 trips
    b.align_region();
    let top1 = b.here();
    b.load(r(3), r(0), 0);
    b.add(r(1), r(1), r(3));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top1);
    // Dataset change.
    b.mov_imm(r(5), 77);
    b.store(r(5), r(0), 0);
    b.mov_imm(r(2), 1500); // phase 2 trips
    b.align_region();
    let top2 = b.here();
    b.load(r(3), r(0), 0);
    b.add(r(1), r(1), r(3));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top2);
    b.halt();
    let p = b.build();

    let res = run(&p, PipelineConfig::scc_full());
    // Correct final sum despite speculation on a changed dataset.
    assert_eq!(res.snapshot.regs[1], 1500 * 10 + 1500 * 77);
    // The reference interpreter agrees.
    let mut m = Machine::new(&p);
    m.run(10_000_000).unwrap();
    assert_eq!(res.snapshot, m.snapshot());
}

#[test]
fn move_elim_only_level_still_helps_mov_heavy_code() {
    // A loop dominated by immediate moves (the paper's exchange2/vips
    // observation: speedup from move elimination alone).
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(2), 3000);
    b.align_region();
    let top = b.here();
    b.mov_imm(r(3), 7);
    b.mov_imm(r(4), 9);
    b.mov(r(5), r(3));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();

    let base = run(&p, PipelineConfig::baseline());
    let cfg = PipelineConfig {
        frontend: FrontendMode::scc(SccConfig::with_opts(scc_core::OptFlags::move_elim_only())),
        ..PipelineConfig::baseline()
    };
    let l3 = run(&p, cfg);
    assert!(l3.stats.committed_uops < base.stats.committed_uops);
    assert_eq!(l3.snapshot, base.snapshot);
}

#[test]
fn string_op_loops_are_never_compacted() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(2), 200);
    b.align_region();
    let top = b.here();
    b.mov_imm(r(3), 4);
    b.mov_imm(r(4), 0x8000);
    b.rep_store(r(3), r(4), r(5));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();
    let res = run(&p, PipelineConfig::scc_full());
    assert_eq!(res.stats.streams_committed, 0, "self-looping macro aborts compaction");
    assert!(res.stats.compactions_aborted > 0);
    assert_eq!(res.stats.uops_from_opt, 0);
}

#[test]
fn fp_heavy_loops_get_little_compaction() {
    // The lbm/wrf/x264 effect: FP work is not optimizable.
    let f = Reg::fp;
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(2), 1000);
    b.align_region();
    let top = b.here();
    b.fadd(f(0), f(1), f(2));
    b.fmul(f(3), f(0), f(1));
    b.simd(f(4), f(3), f(2));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();
    let base = run(&p, PipelineConfig::baseline());
    let scc = run(&p, PipelineConfig::scc_full());
    let reduction = 1.0
        - scc.stats.committed_uops as f64 / base.stats.committed_uops as f64;
    assert!(
        reduction < 0.05,
        "FP loop should see <5% uop reduction, got {:.1}%",
        100.0 * reduction
    );
}

#[test]
fn partitioned_baseline_behaves_like_baseline() {
    // Appendix level (2): partitioning alone (SCC with no optimizations
    // enabled) must not change architectural results and should perform in
    // the same ballpark.
    let p = invariant_loop(1000);
    let base = run(&p, PipelineConfig::baseline());
    let cfg = PipelineConfig {
        frontend: FrontendMode::scc(SccConfig::with_opts(scc_core::OptFlags::none())),
        ..PipelineConfig::baseline()
    };
    let part = run(&p, cfg);
    assert_eq!(part.snapshot, base.snapshot);
    assert_eq!(part.stats.committed_uops, base.stats.committed_uops);
    assert_eq!(part.stats.uops_from_opt, 0, "nothing to stream without optimizations");
}

#[test]
fn fig7_fetch_sources_shift_toward_opt_partition() {
    let p = invariant_loop(3000);
    let base = run(&p, PipelineConfig::baseline());
    let scc = run(&p, PipelineConfig::scc_full());
    // Baseline: everything from the single (unopt) cache after warmup.
    assert!(base.stats.uops_from_unopt > base.stats.uops_from_icache);
    assert_eq!(base.stats.uops_from_opt, 0);
    // SCC: the optimized partition dominates.
    assert!(scc.stats.uops_from_opt > scc.stats.uops_from_unopt);
}

#[test]
fn live_outs_are_rare_relative_to_instructions() {
    // §VII-C: ~0.78% of dynamic instructions carry live-outs. Our loop is
    // compaction-heavy so the ratio is higher, but ghost installs must
    // stay a small fraction of committed work.
    let p = invariant_loop(2000);
    let res = run(&p, PipelineConfig::scc_full());
    assert!(res.stats.committed_ghosts > 0, "stream-end live-outs exist");
    assert!(
        res.stats.committed_ghosts <= res.stats.committed_uops / 2,
        "ghosts are bookkeeping, not the instruction stream"
    );
}

#[test]
fn squash_overhead_is_bounded_on_predictable_code() {
    let p = invariant_loop(2000);
    let res = run(&p, PipelineConfig::scc_full());
    assert!(
        res.stats.squash_overhead() < 0.35,
        "predictable loop should not thrash: {}",
        res.stats.squash_overhead()
    );
}

#[test]
fn oscillating_values_favor_h3vp() {
    // A load alternating between two values: H3VP captures period-2
    // patterns, the stride component of EVES does not.
    use scc_predictors::ValuePredictorKind;
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 5);
    b.word(0x9008, 9);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0);
    b.mov_imm(r(2), 3000);
    b.mov_imm(r(6), 0); // toggle
    b.align_region();
    let top = b.here();
    b.shl_imm(r(7), r(6), 3); // offset 0 or 8
    b.add(r(8), r(0), r(7));
    b.load(r(3), r(8), 0); // alternates 5, 9
    b.add(r(1), r(1), r(3));
    b.xor_imm(r(6), r(6), 1);
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();

    let mk = |vp| PipelineConfig { value_predictor: vp, ..PipelineConfig::scc_full() };
    let h3 = run(&p, mk(ValuePredictorKind::H3vp));
    let ev = run(&p, mk(ValuePredictorKind::Eves));
    assert_eq!(h3.snapshot, ev.snapshot);
    assert_eq!(h3.snapshot.regs[1], 3000 / 2 * (5 + 9));
}

#[test]
fn classic_vp_forwarding_breaks_load_latency_chains() {
    // A serial pointer-to-constant chain: every iteration reloads the same
    // cell and feeds the (long-latency) dependent op. Forwarding the
    // predicted value at rename collapses the wait.
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 3);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(2), 3000);
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0); // invariant load: always 3
    b.mul(r(1), r(1), r(3)); // serial chain through the loaded value
    b.add(r(1), r(1), r(3));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();

    let plain = run(&p, PipelineConfig::baseline());
    let fwd = run(&p, PipelineConfig::baseline_with_vp_forwarding());
    assert_eq!(plain.snapshot, fwd.snapshot, "forwarding is architecturally invisible");
    assert!(fwd.stats.vp_forwards > 0, "the invariant load must be forwarded");
    assert!(
        fwd.stats.cycles <= plain.stats.cycles,
        "forwarding must not slow the chain down: {} vs {}",
        fwd.stats.cycles,
        plain.stats.cycles
    );
}

#[test]
fn vp_forwarding_misprediction_recovers_correctly() {
    // ONE shared inner loop whose hot cell changes between outer phases:
    // the first phase-2 forward validates false, squashes, and the
    // architectural result stays exact.
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x8000, &[10, 99]); // per-phase values
    b.word(0x9000, 0);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0);
    b.mov_imm(r(11), 0x8000);
    b.mov_imm(r(12), 2); // phases
    b.align_region();
    let outer = b.here();
    b.load(r(5), r(11), 0);
    b.store(r(5), r(0), 0); // dataset change
    b.add_imm(r(11), r(11), 8);
    b.mov_imm(r(2), 800);
    b.align_region();
    let inner = b.here();
    b.load(r(3), r(0), 0);
    b.add(r(1), r(1), r(3));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, inner);
    b.sub_imm(r(12), r(12), 1);
    b.cmp_br_imm(Cond::Ne, r(12), 0, outer);
    b.halt();
    let p = b.build();

    let fwd = run(&p, PipelineConfig::baseline_with_vp_forwarding());
    assert_eq!(fwd.snapshot.regs[1], 800 * 10 + 800 * 99);
    assert!(fwd.stats.vp_forwards > 0);
    assert!(fwd.stats.vp_forward_fails >= 1, "the stale forward must be caught: {:?}",
        (fwd.stats.vp_forwards, fwd.stats.vp_forward_fails));
}

#[test]
fn data_mispredict_with_pending_live_outs_recovers_exactly() {
    // Deterministic regression for misprediction recovery under
    // compaction. The loop trains data invariants over a folded chain
    // whose dead values surface as live-outs — pending at the prediction
    // source, final at the stream's trailing ghost. A *branchless*
    // in-loop store flips the hot cell at iteration 900, so the value
    // changes while the compacted stream is in flight: the streamed
    // prediction-source load forwards the new value from the older
    // in-flight store and resolves against the stale invariant, while
    // the activation-time re-check (which consults the value predictor,
    // still trained on the old value) cannot reject the stream first.
    // Recovery must kill the pending live-outs and the trailing ghost,
    // rebuild the rename map (the debug-build `assert_squash_consistent`
    // audit runs on every squash here), and replay down the correct path
    // to the exact architectural result.
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 10);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(1), 0); // acc
    b.mov_imm(r(2), 0); // i
    b.mov_imm(r(8), 67);
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0); // data prediction source once compacted
    b.add_imm(r(4), r(3), 2); // folds under the invariant
    b.shl_imm(r(5), r(4), 1); // folds; dead value surfaces as a live-out
    b.add(r(1), r(1), r(5)); // live chain
    b.cmp_imm(r(2), 900);
    b.setcc(Cond::Ge, r(6));
    b.mul(r(7), r(6), r(8)); // 0 before iteration 900, 67 after
    b.add_imm(r(9), r(7), 10);
    b.store(r(9), r(0), 0); // branchless dataset flip at i == 900
    b.add_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 1800, top);
    b.halt();
    let p = b.build();

    let res = run(&p, PipelineConfig::scc_full());
    assert!(res.stats.streams_committed >= 1, "the loop must be compacted");
    assert!(
        res.stats.scc_data_squashes >= 1,
        "the stale data invariant must be caught at validation: {:?}",
        res.stats.scc_data_squashes
    );
    assert!(res.stats.invariants_failed >= 1, "validation failure must be counted");
    assert!(res.stats.committed_ghosts > 0, "trailing live-out ghosts must commit");
    // Exact architectural result: iterations 0..=900 load 10 (the flip
    // stored at i == 900 is seen one iteration later), 901..1800 load 77.
    assert_eq!(res.snapshot.regs[1], 901 * 24 + 899 * 158);
    let mut m = Machine::new(&p);
    m.run(10_000_000).unwrap();
    assert_eq!(res.snapshot, m.snapshot(), "recovery must reconverge with the oracle");
    // The whole scenario is deterministic: a second run reproduces the
    // squash schedule cycle-for-cycle.
    let again = run(&p, PipelineConfig::scc_full());
    assert_eq!(again.stats, res.stats);
    assert_eq!(again.snapshot, res.snapshot);
}

#[test]
fn trace_records_the_compaction_narrative() {
    use scc_pipeline::TraceEvent;
    let p = invariant_loop(1500);
    let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
    pipe.enable_trace(100_000);
    let res = pipe.run(10_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted);
    let trace = pipe.take_trace().expect("trace enabled");
    assert!(!trace.is_empty());
    let mut commits = 0;
    let mut compactions = 0;
    let mut streams = 0;
    for e in trace.events() {
        match e {
            TraceEvent::Commit { .. } => commits += 1,
            TraceEvent::Compaction { outcome: "committed", shrinkage, .. } => {
                compactions += 1;
                assert!(*shrinkage > 0);
            }
            TraceEvent::Compaction { .. } => {}
            TraceEvent::StreamChosen { len, .. } => {
                streams += 1;
                assert!(*len >= 1);
            }
            // A squash can flush zero micro-ops when fetch had stalled.
            TraceEvent::Squash { .. } => {}
        }
    }
    assert!(commits > 1000, "commits traced: {commits}");
    assert!(compactions >= 1, "compaction outcomes traced");
    assert!(streams > 10, "stream choices traced: {streams}");
    // Render is line-oriented and mentions the loop region.
    let text = trace.render();
    assert!(text.contains("compact region"));
    // Tracing is off after take_trace.
    assert!(pipe.take_trace().is_none());
}

#[test]
fn micro_fusion_saves_fetch_slots() {
    // 8 micro-ops per iteration balanced so no execution port is the
    // bottleneck (2 loads, 4 int-ALU, 2 FP): unfused the loop needs two
    // 6-wide fetch groups per iteration, fused (2 load+op pairs) it fits
    // in one.
    let f = Reg::fp;
    let mut b = ProgramBuilder::new(0x1000);
    b.words(0x9000, &[3, 5]);
    b.mov_imm(r(0), 0x9000);
    b.mov_imm(r(2), 3000);
    b.align_region();
    let top = b.here();
    b.load(r(3), r(0), 0);
    b.add(r(1), r(1), r(3)); // fuses with the load
    b.load(r(4), r(0), 8);
    b.xor(r(5), r(5), r(4)); // fuses
    b.fadd(f(0), f(1), f(2));
    b.fadd(f(3), f(4), f(5));
    b.sub_imm(r(2), r(2), 1);
    b.cmp_br_imm(Cond::Ne, r(2), 0, top);
    b.halt();
    let p = b.build();

    let mut no_fusion = PipelineConfig::baseline();
    no_fusion.core.micro_fusion = false;
    let plain = run(&p, no_fusion);
    let fused = run(&p, PipelineConfig::baseline());
    assert_eq!(plain.snapshot, fused.snapshot, "fusion is occupancy-only");
    assert!(
        fused.stats.cycles < plain.stats.cycles,
        "fusion should relieve the fetch bottleneck: {} vs {}",
        fused.stats.cycles,
        plain.stats.cycles
    );
}
