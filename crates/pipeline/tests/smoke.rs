//! Smallest-possible pipeline smoke tests, useful for debugging the cycle
//! loop in isolation before the differential suite runs.

use scc_isa::{Cond, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig, RunOutcome};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

#[test]
fn straight_line_halts() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 6);
    b.mov_imm(r(2), 7);
    b.mul(r(3), r(1), r(2));
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(10_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[3], 42);
}

#[test]
fn tiny_loop_halts_baseline() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0);
    b.mov_imm(r(1), 5);
    let top = b.here();
    b.add(r(0), r(0), r(1));
    b.sub_imm(r(1), r(1), 1);
    b.cmp_br_imm(Cond::Ne, r(1), 0, top);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(100_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[0], 15);
}

#[test]
fn tiny_loop_halts_scc() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0);
    b.mov_imm(r(1), 50);
    let top = b.here();
    b.add_imm(r(0), r(0), 2);
    b.sub_imm(r(1), r(1), 1);
    b.cmp_br_imm(Cond::Ne, r(1), 0, top);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
    let res = pipe.run(1_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[0], 100);
}

#[test]
fn cancel_check_stops_a_run() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    // A long-enough loop that the 4096-cycle poll cadence fires many
    // times before halt.
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0);
    b.mov_imm(r(1), 200_000);
    let top = b.here();
    b.add_imm(r(0), r(0), 1);
    b.sub_imm(r(1), r(1), 1);
    b.cmp_br_imm(Cond::Ne, r(1), 0, top);
    b.halt();
    let p = b.build();

    // Trip on the third poll: the run must stop there, not at halt.
    let polls = Arc::new(AtomicU64::new(0));
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let seen = Arc::clone(&polls);
    pipe.set_cancel_check(Box::new(move || seen.fetch_add(1, Ordering::Relaxed) >= 2));
    let res = pipe.run(100_000_000);
    assert_eq!(res.outcome, RunOutcome::Cancelled, "stats: {:?}", res.stats);
    assert!(res.stats.cycles > 0, "some progress before cancellation");
    assert!(res.stats.cycles <= 3 * 4096, "stopped at the tripping poll");
    assert_eq!(polls.load(Ordering::Relaxed), 3, "check polled once per 4096 cycles");

    // An immediately-true check cancels before any simulation work.
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    pipe.set_cancel_check(Box::new(|| true));
    let res = pipe.run(100_000_000);
    assert_eq!(res.outcome, RunOutcome::Cancelled);
    assert_eq!(res.stats.cycles, 0, "cancelled at cycle zero");

    // A never-true check perturbs nothing: same outcome and stats as a
    // run without one.
    let mut plain = Pipeline::new(&p, PipelineConfig::baseline());
    let plain_res = plain.run(100_000_000);
    let mut checked = Pipeline::new(&p, PipelineConfig::baseline());
    checked.set_cancel_check(Box::new(|| false));
    let checked_res = checked.run(100_000_000);
    assert_eq!(plain_res.outcome, RunOutcome::Halted);
    assert_eq!(plain_res.stats, checked_res.stats, "cancel hook must not perturb");
    assert_eq!(plain_res.snapshot, checked_res.snapshot);
}

#[test]
fn loads_and_stores_work() {
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 11);
    b.mov_imm(r(1), 0x9000);
    b.load(r(2), r(1), 0);
    b.add_imm(r(2), r(2), 1);
    b.store(r(2), r(1), 8);
    b.load(r(3), r(1), 8);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(100_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[3], 12, "store-to-load forwarding");
    assert!(res.snapshot.mem.contains(&(0x9008, 12)));
}
