//! Smallest-possible pipeline smoke tests, useful for debugging the cycle
//! loop in isolation before the differential suite runs.

use scc_isa::{Cond, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig, RunOutcome};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

#[test]
fn straight_line_halts() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(1), 6);
    b.mov_imm(r(2), 7);
    b.mul(r(3), r(1), r(2));
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(10_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[3], 42);
}

#[test]
fn tiny_loop_halts_baseline() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0);
    b.mov_imm(r(1), 5);
    let top = b.here();
    b.add(r(0), r(0), r(1));
    b.sub_imm(r(1), r(1), 1);
    b.cmp_br_imm(Cond::Ne, r(1), 0, top);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(100_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[0], 15);
}

#[test]
fn tiny_loop_halts_scc() {
    let mut b = ProgramBuilder::new(0x1000);
    b.mov_imm(r(0), 0);
    b.mov_imm(r(1), 50);
    let top = b.here();
    b.add_imm(r(0), r(0), 2);
    b.sub_imm(r(1), r(1), 1);
    b.cmp_br_imm(Cond::Ne, r(1), 0, top);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
    let res = pipe.run(1_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[0], 100);
}

#[test]
fn loads_and_stores_work() {
    let mut b = ProgramBuilder::new(0x1000);
    b.word(0x9000, 11);
    b.mov_imm(r(1), 0x9000);
    b.load(r(2), r(1), 0);
    b.add_imm(r(2), r(2), 1);
    b.store(r(2), r(1), 8);
    b.load(r(3), r(1), 8);
    b.halt();
    let p = b.build();
    let mut pipe = Pipeline::new(&p, PipelineConfig::baseline());
    let res = pipe.run(100_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    assert_eq!(res.snapshot.regs[3], 12, "store-to-load forwarding");
    assert!(res.snapshot.mem.contains(&(0x9008, 12)));
}
