//! Differential correctness: the out-of-order pipeline — baseline and
//! with full SCC — must finish every program in an architectural state
//! identical to the in-order reference interpreter. This is the linchpin
//! property of the reproduction: all SCC speculation must be
//! architecturally invisible.

use scc_isa::rand_prog::{random_program, RandProgConfig};
use scc_isa::{ArchSnapshot, Machine, Program};
use scc_pipeline::{Pipeline, PipelineConfig, RunOutcome};

fn reference(p: &Program) -> ArchSnapshot {
    let mut m = Machine::new(p);
    let r = m.run(5_000_000).expect("reference run");
    assert!(r.halted, "reference must halt");
    m.snapshot()
}

fn pipeline_snapshot(p: &Program, cfg: PipelineConfig) -> ArchSnapshot {
    let mut pipe = Pipeline::new(p, cfg);
    let r = pipe.run(20_000_000);
    assert_eq!(r.outcome, RunOutcome::Halted, "pipeline must halt");
    r.snapshot
}

#[test]
fn baseline_matches_reference_on_random_programs() {
    let cfg = RandProgConfig::default();
    for seed in 0..40 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let got = pipeline_snapshot(&p, PipelineConfig::baseline());
        assert_eq!(got, want, "baseline diverged on seed {seed}");
    }
}

#[test]
fn scc_matches_reference_on_random_programs() {
    let cfg = RandProgConfig::default();
    for seed in 0..40 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let got = pipeline_snapshot(&p, PipelineConfig::scc_full());
        assert_eq!(got, want, "SCC diverged on seed {seed}");
    }
}

#[test]
fn scc_matches_reference_on_loopy_programs() {
    // Hot loops are where compaction actually triggers; crank trip counts
    // so regions cross the hotness threshold and streams execute.
    let cfg = RandProgConfig {
        blocks: 4,
        block_len: 6,
        max_trips: 200,
        ..RandProgConfig::default()
    };
    for seed in 100..120 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let got = pipeline_snapshot(&p, PipelineConfig::scc_full());
        assert_eq!(got, want, "SCC diverged on loopy seed {seed}");
    }
}

#[test]
fn scc_actually_compacts_on_loopy_programs() {
    // Guard against the equivalence tests passing vacuously: across the
    // loopy corpus, SCC must commit streams and fetch from the optimized
    // partition.
    let cfg = RandProgConfig {
        blocks: 4,
        block_len: 6,
        max_trips: 400,
        with_string_ops: false,
        ..RandProgConfig::default()
    };
    let mut total_opt_uops = 0;
    let mut total_streams = 0;
    for seed in 200..210 {
        let p = random_program(seed, &cfg);
        let mut pipe = Pipeline::new(&p, PipelineConfig::scc_full());
        let r = pipe.run(20_000_000);
        assert_eq!(r.outcome, RunOutcome::Halted);
        total_opt_uops += r.stats.uops_from_opt;
        total_streams += r.stats.streams_committed;
    }
    assert!(total_streams > 0, "no compacted streams were ever committed");
    assert!(total_opt_uops > 0, "no micro-ops were ever fetched from the optimized partition");
}

#[test]
fn all_opt_levels_match_reference() {
    use scc_core::{OptFlags, SccConfig};
    use scc_pipeline::FrontendMode;
    let prog_cfg = RandProgConfig { max_trips: 100, ..RandProgConfig::default() };
    let levels = [
        OptFlags::none(),
        OptFlags::move_elim_only(),
        OptFlags::fold_prop(),
        OptFlags::branch_fold(),
        OptFlags::full(),
    ];
    for seed in 300..310 {
        let p = random_program(seed, &prog_cfg);
        let want = reference(&p);
        for (i, flags) in levels.iter().enumerate() {
            let cfg = PipelineConfig {
                frontend: FrontendMode::scc(SccConfig::with_opts(*flags)),
                ..PipelineConfig::baseline()
            };
            let got = pipeline_snapshot(&p, cfg);
            assert_eq!(got, want, "level {i} diverged on seed {seed}");
        }
    }
}

#[test]
fn constant_width_restrictions_preserve_correctness() {
    use scc_core::SccConfig;
    use scc_pipeline::FrontendMode;
    let prog_cfg = RandProgConfig { max_trips: 100, ..RandProgConfig::default() };
    for width in [8u32, 16, 32, 64] {
        for seed in 400..406 {
            let p = random_program(seed, &prog_cfg);
            let want = reference(&p);
            let mut scc = SccConfig::full();
            scc.max_constant_width = Some(width);
            let cfg = PipelineConfig {
                frontend: FrontendMode::scc(scc),
                ..PipelineConfig::baseline()
            };
            let got = pipeline_snapshot(&p, cfg);
            assert_eq!(got, want, "width {width} diverged on seed {seed}");
        }
    }
}

#[test]
fn vp_forwarding_matches_reference_on_random_programs() {
    let cfg = RandProgConfig { max_trips: 120, ..RandProgConfig::default() };
    for seed in 500..530 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let got = pipeline_snapshot(&p, PipelineConfig::baseline_with_vp_forwarding());
        assert_eq!(got, want, "vp forwarding diverged on seed {seed}");
    }
}

#[test]
fn scc_plus_vp_forwarding_matches_reference() {
    use scc_pipeline::PipelineConfig as PC;
    let cfg = RandProgConfig { max_trips: 120, ..RandProgConfig::default() };
    for seed in 600..620 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let combo = PC { vp_forwarding: Some(15), ..PC::scc_full() };
        let got = pipeline_snapshot(&p, combo);
        assert_eq!(got, want, "SCC+forwarding diverged on seed {seed}");
    }
}

#[test]
fn future_work_complex_alu_matches_reference() {
    use scc_core::{OptFlags, SccConfig};
    use scc_pipeline::FrontendMode;
    let cfg = RandProgConfig { max_trips: 150, ..RandProgConfig::default() };
    for seed in 700..725 {
        let p = random_program(seed, &cfg);
        let want = reference(&p);
        let pc = PipelineConfig {
            frontend: FrontendMode::scc(SccConfig::with_opts(OptFlags::future_work())),
            ..PipelineConfig::baseline()
        };
        let got = pipeline_snapshot(&p, pc);
        assert_eq!(got, want, "future-work config diverged on seed {seed}");
    }
}
