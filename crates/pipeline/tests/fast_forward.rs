//! Event-driven fast-forward: engagement, identity with per-cycle
//! stepping, and preservation of the cancellation-poll cadence.
//!
//! The workhorse program is a serial pointer chase — every load's address
//! depends on the previous load's value, so each cold DRAM miss stalls
//! the whole window and the pipeline spends most of its cycles provably
//! quiescent. That is exactly the shape fast-forward exists for.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use scc_isa::{Program, ProgramBuilder, Reg};
use scc_pipeline::{Pipeline, PipelineConfig, RunOutcome};

fn r(n: u8) -> Reg {
    Reg::int(n)
}

/// A chain of `links` dependent loads: memory holds `addr -> next addr`,
/// and the program repeatedly loads its own address register. Every link
/// is a cold miss, so the run is dominated by memory stalls.
fn pointer_chase(links: u64) -> Program {
    let mut b = ProgramBuilder::new(0x1000);
    let base = 0x0010_0000u64;
    // Stride past the cache line so every link misses.
    let stride = 0x400u64;
    for i in 0..links {
        b.word(base + i * stride, (base + (i + 1) * stride) as i64);
    }
    b.mov_imm(r(1), base as i64);
    for _ in 0..links {
        b.load(r(1), r(1), 0);
    }
    b.halt();
    b.build()
}

fn ff_config(fast_forward: bool) -> PipelineConfig {
    let mut cfg = PipelineConfig::baseline();
    cfg.fast_forward = fast_forward;
    cfg
}

#[test]
fn fast_forward_engages_on_memory_stalls() {
    let p = pointer_chase(64);
    let mut pipe = Pipeline::new(&p, ff_config(true));
    let res = pipe.run(10_000_000);
    assert_eq!(res.outcome, RunOutcome::Halted, "stats: {:?}", res.stats);
    // 64 serial DRAM misses: thousands of cycles, almost all skippable.
    assert!(res.stats.cycles > 5_000, "expected a stall-bound run");
    assert!(pipe.ff_jumps() > 32, "fast-forward barely engaged: {} jumps", pipe.ff_jumps());
    // The chase must still compute the right final pointer.
    assert_eq!(res.snapshot.regs[1], 0x0010_0000 + 64 * 0x400);
}

#[test]
fn fast_forward_matches_per_cycle_stepping() {
    let p = pointer_chase(64);
    let mut on = Pipeline::new(&p, ff_config(true));
    let on_res = on.run(10_000_000);
    let mut off = Pipeline::new(&p, ff_config(false));
    let off_res = off.run(10_000_000);
    assert_eq!(on_res.outcome, RunOutcome::Halted);
    assert_eq!(on_res.stats, off_res.stats, "fast-forward must be invisible in stats");
    assert_eq!(on_res.snapshot, off_res.snapshot);
    assert!(on.ff_jumps() > 0, "fast-forward never engaged");
    assert_eq!(off.ff_jumps(), 0, "per-cycle mode must never jump");
}

/// Satellite regression: jumps are clamped to the next 4096-cycle
/// boundary, so the cancellation hook still gets polled once per 4096
/// cycles and a tripped check stops the run within one poll period —
/// even when the pipeline could have leapt tens of thousands of cycles.
#[test]
fn fast_forward_preserves_cancellation_cadence() {
    let p = pointer_chase(400);

    // Measure the poll count of an uncancelled run with and without
    // fast-forward: the cadence contract is that they are identical.
    let count_polls = |fast_forward: bool| {
        let polls = Arc::new(AtomicU64::new(0));
        let mut pipe = Pipeline::new(&p, ff_config(fast_forward));
        let seen = Arc::clone(&polls);
        pipe.set_cancel_check(Box::new(move || {
            seen.fetch_add(1, Ordering::Relaxed);
            false
        }));
        let res = pipe.run(10_000_000);
        assert_eq!(res.outcome, RunOutcome::Halted);
        (res.stats.cycles, polls.load(Ordering::Relaxed))
    };
    let (cycles_on, polls_on) = count_polls(true);
    let (cycles_off, polls_off) = count_polls(false);
    assert_eq!(cycles_on, cycles_off);
    assert_eq!(polls_on, polls_off, "fast-forward changed the poll cadence");
    assert!(cycles_on > 3 * 4096, "run too short to exercise several poll periods");
    // One poll at cycle 0 plus one per boundary reached.
    assert_eq!(polls_on, cycles_on / 4096 + 1);

    // A check that trips on the third poll must stop the run there; a
    // jump that sailed past the boundary would delay this indefinitely.
    let polls = Arc::new(AtomicU64::new(0));
    let mut pipe = Pipeline::new(&p, ff_config(true));
    let seen = Arc::clone(&polls);
    pipe.set_cancel_check(Box::new(move || seen.fetch_add(1, Ordering::Relaxed) >= 2));
    let res = pipe.run(10_000_000);
    assert_eq!(res.outcome, RunOutcome::Cancelled, "stats: {:?}", res.stats);
    assert!(res.stats.cycles <= 3 * 4096, "cancellation overshot a poll period");
    assert_eq!(polls.load(Ordering::Relaxed), 3, "polled once per 4096 cycles");
}
